"""Figure 6: the HBM BORD after scaling vector throughput by 4x."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.bord import Bord, BordPoint
from repro.core.roofsurface import BoundingFactor
from repro.core.schemes import PAPER_SCHEMES
from repro.experiments.figure4 import scheme_signature
from repro.experiments.figure5 import _PLOT_AIXM_MAX, _PLOT_AIXV_MAX
from repro.experiments.report import Table
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class Figure6Result:
    """BORD with 4x VOS plus the region shrink relative to baseline."""

    points: List[BordPoint]
    vec_region_baseline: float
    vec_region_scaled: float

    def format_table(self) -> str:
        table = Table(
            "Figure 6 (HBM, 4x VOS): kernel classification",
            ["scheme", "bound"],
        )
        for point in self.points:
            table.add_row(point.label, point.bound.value)
        note = (
            f"VEC-region share of the window: baseline "
            f"{self.vec_region_baseline:.0%} -> 4x VOS "
            f"{self.vec_region_scaled:.0%}"
        )
        return table.render() + "\n" + note

    def still_vec_bound(self) -> List[str]:
        """Kernels a 4x VOS increase still leaves VEC-bound."""
        return [
            p.label for p in self.points if p.bound is BoundingFactor.VECTOR
        ]


def run(vos_scale: float = 4.0) -> Figure6Result:
    """Scale the machine's vector throughput and re-classify the kernels."""
    base_machine = hbm_system().machine
    scaled_machine = base_machine.with_vector_scale(vos_scale)
    baseline_bord = Bord(base_machine)
    scaled_bord = Bord(scaled_machine)
    signatures = []
    for scheme in PAPER_SCHEMES:
        aixm, aixv = scheme_signature(scheme)
        signatures.append((scheme.name, aixm, aixv))
    points = scaled_bord.place_all(signatures)
    base_fracs = baseline_bord.region_fractions(_PLOT_AIXM_MAX, _PLOT_AIXV_MAX)
    scaled_fracs = scaled_bord.region_fractions(_PLOT_AIXM_MAX, _PLOT_AIXV_MAX)
    return Figure6Result(
        points=points,
        vec_region_baseline=base_fracs[BoundingFactor.VECTOR],
        vec_region_scaled=scaled_fracs[BoundingFactor.VECTOR],
    )
