"""Socket-transport sweep executor: dispatch cells to host workers.

The second executor backend behind :func:`repro.experiments.parallel
.stream_map`. Where the fork backend fans cells out to forked pool
workers on *this* host, this module dispatches contiguous cell
partitions to N worker processes reachable over TCP — remote hosts
running the same wheel, or loopback subprocesses spawned by
:func:`start_loopback_workers` — and streams ``(index, result,
cache_delta)`` chunks back through the exact same incremental-merge /
index-sort path, so results are bit-identical to the serial and fork
paths (the simulator is pure; only warmth and wall-clock differ).

Wire protocol
-------------

Messages are pickled tuples behind a 4-byte big-endian length prefix
(``struct "!I"``). Every sweep gets a fresh sequence number carried by
each message, so stale frames from an aborted sweep are dropped
instead of corrupting the next one. One handshake + run conversation:

* parent → ``("sync", seq, generation)``; worker adopts the cache
  clear-generation and replies ``("state", seq, fingerprint,
  digests)`` — its schema fingerprint plus the ``key_digest`` set it
  already holds (memory keys and disk-index snapshot).
* parent → ``("shards", seq, groups)``: the warm-start broadcast as
  **hash-sharded packed deltas** — entries grouped by the 2-hex-char
  ``key_digest`` prefix (the disk tier's fan-out directories), each
  entry shipped as the verbatim pack payload bytes
  (:func:`repro.sim.diskcache.encode_entry_payload`), pre-filtered
  against the worker's declared digest set so only missing shards
  cross the wire. Worker merges and replies ``("shards-ok", seq, n)``.
* parent → ``("run", seq, fn, cells, deadline_s, parent_digests,
  prefetch_keys)``: a contiguous partition of ``(index, item)`` cells.
  The worker runs them in order, polling for ``("stop",)`` frames and
  the deadline between cells, and streams back one ``("chunk", seq,
  index, result, shard_payloads, extra_entries, d_hits, d_misses,
  d_disk)`` per finished cell — its cache delta sharded and deduped
  against the parent's digest snapshot the same way — then ``("done",
  seq, completed)``. A cell exception becomes ``("error", seq,
  traceback)`` and surfaces in the parent as
  :class:`repro.errors.RemoteWorkerError`.

Because both directions dedup against the other side's digest set, a
*second* sweep over live workers ships ~0 shard bytes: the workers'
memory caches answer every cell, so no new entries exist to return,
and the parent's warm entries are all in the workers' declared sets.

Trust model
-----------

The transport pickles arbitrary objects — connecting to a worker (or
accepting a parent) is code execution by design, exactly like the
disk cache's trust boundary. Workers bind loopback by default;
binding a routable address is an explicit operator decision for
trusted networks only (see ``docs/DISTRIBUTED.md``).

Failure semantics
-----------------

Host death mid-sweep is recovered the same way the fork backend
recovers a SIGKILLed pool worker: the reader thread reports the lost
connection, and every cell of that host's partition without a received
result is recomputed *in-parent* (receipts de-duplicate by cell index,
so a late chunk racing its recompute can never double-merge or
double-yield). Connection failure at sweep start raises
:class:`repro.errors.ConfigurationError` instead — a sweep that cannot
reach any configured host should fail loudly, not silently degrade.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue
import select
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RemoteWorkerError,
)
from repro.experiments import parallel as _parallel
from repro.sim import cache as _simcache
from repro.sim.diskcache import (
    decode_entry_payload,
    encode_entry_payload,
    key_digest,
    schema_fingerprint,
)

#: Environment variable naming the socket workers to dispatch sweeps
#: to, as a comma-separated ``host:port`` list (the CLI's ``--hosts``
#: flag sets the same configuration explicitly).
SWEEP_HOSTS_ENV = "REPRO_SWEEP_HOSTS"

#: Upper bound on one framed message; a length prefix beyond this is a
#: desynced or hostile stream, not a payload.
MAX_FRAME_BYTES = 1 << 30

#: The stdout line a worker prints once its server socket is bound;
#: :func:`start_loopback_workers` parses the actual port out of it.
WORKER_READY_PREFIX = "repro worker: listening on "

#: Pickle protocol for wire frames (same interpreter on both ends —
#: the whole point of "runs the same wheel").
_WIRE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Seconds before a parent gives up connecting to a configured host.
_CONNECT_TIMEOUT_S = 10.0

#: Seconds the parent waits for every worker's handshake reply.
_SYNC_TIMEOUT_S = 30.0

#: Poll interval of worker accept/receive loops and the parent's event
#: waits; bounds shutdown latency, not result latency.
_POLL_S = 0.25

#: Hosts configured programmatically (CLI/tests); ``None`` means
#: "unset, fall back to the environment", ``()`` means "explicitly
#: disabled, even if the environment names hosts".
_CONFIGURED_HOSTS: Optional[Tuple[str, ...]] = None

#: The persistent worker-pool connections, reused sweep to sweep
#: (mirrors the fork backend's persistent pool).
_REMOTE_POOL: Optional["RemoteWorkerPool"] = None

#: Loopback worker subprocesses spawned by this process, reaped by
#: :func:`shutdown_remote_workers`.
_LOOPBACK_PROCS: List[subprocess.Popen] = []

#: Monotonically increasing sweep sequence number (stale-frame filter).
_SWEEP_SEQ = 0

#: Cumulative per-host topology counters for this process:
#: ``host -> {"cells", "delta_bytes_sent", "delta_bytes_received"}``.
_HOST_TOTALS: Dict[str, Dict[str, int]] = {}


# ---------------------------------------------------------------------------
# Host configuration


def parse_hosts(raw: str) -> Tuple[str, ...]:
    """A validated ``host:port`` tuple from a comma-separated string."""
    hosts: List[str] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, port = part.rpartition(":")
        if not sep or not name or not port.isdigit():
            raise ConfigurationError(
                f"malformed sweep host {part!r}: expected HOST:PORT"
            )
        hosts.append(f"{name}:{int(port)}")
    return tuple(hosts)


def configure_sweep_hosts(
    hosts: "Optional[Sequence[str] | str]",
) -> None:
    """Set (or clear) the socket-worker hosts for this process.

    Takes precedence over :data:`SWEEP_HOSTS_ENV`. ``None`` reverts to
    the environment; an empty sequence (or ``""``) disables socket
    dispatch outright even when the environment names hosts.
    """
    global _CONFIGURED_HOSTS
    if hosts is None:
        _CONFIGURED_HOSTS = None
    elif isinstance(hosts, str):
        _CONFIGURED_HOSTS = parse_hosts(hosts)
    else:
        _CONFIGURED_HOSTS = parse_hosts(",".join(hosts))


def active_sweep_hosts() -> Tuple[str, ...]:
    """The socket-worker hosts sweeps currently dispatch to (or ``()``).

    Explicit configuration (:func:`configure_sweep_hosts`) wins over
    the :data:`SWEEP_HOSTS_ENV` environment variable.
    """
    if _CONFIGURED_HOSTS is not None:
        return _CONFIGURED_HOSTS
    raw = os.environ.get(SWEEP_HOSTS_ENV, "")
    if not raw.strip():
        return ()
    return parse_hosts(raw)


# ---------------------------------------------------------------------------
# Framing


def _send_frame(sock: socket.socket, message: Any) -> None:
    payload = pickle.dumps(message, _WIRE_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise ValueError("frame exceeds MAX_FRAME_BYTES")
    sock.sendall(struct.pack("!I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[Any]:
    """One framed message, ``None`` on orderly EOF, raises on desync."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack("!I", header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError("oversized frame (desynced stream)")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("connection closed mid-frame")
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# Shared digest plumbing


def _local_digest_set() -> Set[str]:
    """Every ``key_digest`` this process can already serve.

    Memory-tier keys plus the disk index's snapshot (entries the disk
    tier holds are one counter-neutral load away, so shipping them
    over the wire would be pure waste). Undigestible keys are simply
    not advertised — they ride the ``extra_entries`` path instead.
    """
    digests: Set[str] = set()
    for key in _simcache.simulation_cache_keys():
        try:
            digests.add(key_digest(key))
        except TypeError:
            pass
    disk = _simcache.simulation_cache_disk()
    if disk is not None:
        try:
            digests.update(disk.index.snapshot())
        except Exception:  # pragma: no cover - degraded disk tier
            pass
    return digests


def _shard_entries(
    entries: Sequence[Tuple[Any, Any]],
    exclude: Set[str],
) -> Tuple[List[Tuple[str, bytes]], List[Tuple[Any, Any]]]:
    """Split entries into (digest, pack-payload) shards + raw extras.

    Entries whose digest is in ``exclude`` are dropped (the other side
    already holds them); undigestible or unpicklable-as-payload keys
    fall back to the raw ``(key, value)`` extras list.
    """
    shards: List[Tuple[str, bytes]] = []
    extras: List[Tuple[Any, Any]] = []
    for key, value in entries:
        try:
            digest = key_digest(key)
        except TypeError:
            extras.append((key, value))
            continue
        if digest in exclude:
            continue
        try:
            shards.append((digest, encode_entry_payload(key, value)))
        except Exception:
            extras.append((key, value))
    return shards, extras


def _merge_shard_payloads(
    shards: Sequence[Tuple[str, bytes]],
    extras: Sequence[Tuple[Any, Any]],
    hits: int = 0,
    misses: int = 0,
    disk_hits: int = 0,
) -> int:
    """Decode + merge received shards; entries reached (ins + dup).

    A shard that fails to decode (foreign fingerprint, torn payload)
    is dropped — warmth-only, the entry recomputes locally instead.
    """
    entries: List[Tuple[Any, Any]] = []
    for _digest, payload in shards:
        try:
            entries.append(decode_entry_payload(payload))
        except Exception:
            continue
    entries.extend(extras)
    stats = _simcache.merge_simulation_cache(
        entries, hits=hits, misses=misses, disk_hits=disk_hits
    )
    return stats.inserted + stats.duplicates


# ---------------------------------------------------------------------------
# Worker side


def run_worker_server(
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str, int], None]] = None,
    stop_event: Optional[threading.Event] = None,
) -> None:
    """Serve sweep partitions on ``host:port`` until told to stop.

    The body of the ``repro worker`` CLI verb. Binds (``port=0`` picks
    a free one), reports the bound address through ``ready``, then
    accepts one parent connection at a time and serves its handshake /
    shards / run conversations. The worker uses its *own* cache
    configuration (its ``--cache-dir`` / ``REPRO_CACHE_DIR``); parents
    never reach into it beyond shipping deltas. Nested sweeps inside
    cell tasks degrade to serial exactly as in fork pool workers.
    """
    _parallel._mark_worker()
    server = socket.create_server((host, port))
    bound_host, bound_port = server.getsockname()[:2]
    if ready is not None:
        ready(bound_host, bound_port)
    server.settimeout(_POLL_S)
    try:
        while stop_event is None or not stop_event.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener torn down
                break
            try:
                _serve_connection(conn, stop_event)
            except Exception:  # noqa: BLE001 - one bad parent, next accept
                pass
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
    finally:
        server.close()


def _serve_connection(
    sock: socket.socket, stop_event: Optional[threading.Event]
) -> None:
    """One parent's conversation: sync/shards/run frames until EOF."""
    while True:
        if stop_event is not None and stop_event.is_set():
            return
        readable, _, _ = select.select([sock], [], [], _POLL_S)
        if not readable:
            continue
        message = _recv_frame(sock)
        if message is None or message[0] == "bye":
            return
        kind = message[0]
        if kind == "sync":
            _, seq, generation = message
            _simcache.sync_simulation_cache_generation(generation)
            _send_frame(
                sock,
                ("state", seq, schema_fingerprint(), _local_digest_set()),
            )
        elif kind == "shards":
            _, seq, groups = message
            flattened: List[Tuple[str, bytes]] = []
            for _prefix, payloads in groups:
                flattened.extend(payloads)
            reached = _merge_shard_payloads(flattened, [])
            _send_frame(sock, ("shards-ok", seq, reached))
        elif kind == "run":
            _handle_run(sock, message, stop_event)
        elif kind == "stop":
            # A stop for a sweep that already drained; nothing to do.
            pass


def _stop_frame_pending(sock: socket.socket) -> bool:
    """Drain any already-arrived control frames; True to abandon run."""
    while True:
        readable, _, _ = select.select([sock], [], [], 0)
        if not readable:
            return False
        control = _recv_frame(sock)
        if control is None or control[0] in ("stop", "bye"):
            return True


def _handle_run(
    sock: socket.socket,
    message: Tuple[Any, ...],
    stop_event: Optional[threading.Event],
) -> None:
    """Run one contiguous partition, streaming a chunk per cell."""
    _, seq, fn, cells, deadline_s, parent_digests, prefetch = message
    deadline = (
        None if deadline_s is None else time.monotonic() + deadline_s
    )
    cancel = threading.Event()
    if (
        prefetch
        and _simcache.simulation_cache_dir() is not None
        and _parallel.prefetch_enabled()
    ):
        def _should_stop() -> bool:
            return cancel.is_set() or (
                deadline is not None and time.monotonic() >= deadline
            )

        threading.Thread(
            target=_simcache.prefetch_simulation_keys,
            args=(list(prefetch),),
            kwargs={"should_stop": _should_stop},
            name="repro-remote-prefetch",
            daemon=True,
        ).start()
    completed = 0
    try:
        for index, item in cells:
            if stop_event is not None and stop_event.is_set():
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if _stop_frame_pending(sock):
                break
            baseline = _simcache.simulation_cache_keys()
            before = _simcache.simulation_cache_stats()
            try:
                result = fn(item)
            except Exception:
                _send_frame(sock, ("error", seq, traceback.format_exc()))
                break
            after = _simcache.simulation_cache_stats()
            new_entries = [
                (key, value)
                for key, value in _simcache.export_simulation_cache()
                if key not in baseline
            ]
            shards, extras = _shard_entries(new_entries, parent_digests)
            # Later cells of this partition need not re-ship what this
            # chunk already carried (their baselines cover memory, but
            # the parent set is the authoritative exclude).
            parent_digests.update(digest for digest, _ in shards)
            _send_frame(
                sock,
                (
                    "chunk",
                    seq,
                    index,
                    result,
                    shards,
                    extras,
                    after.hits - before.hits,
                    after.misses - before.misses,
                    after.disk_hits - before.disk_hits,
                ),
            )
            completed += 1
    finally:
        cancel.set()
        try:
            _send_frame(sock, ("done", seq, completed))
        except OSError:  # pragma: no cover - parent went away mid-run
            pass


# ---------------------------------------------------------------------------
# Parent side: connections and pool


class _RemoteConnection:
    """One live worker link: socket + reader thread feeding the pool."""

    def __init__(
        self, host: str, events: "queue.Queue[Tuple[Any, Any]]"
    ) -> None:
        self.host = host
        self.events = events
        name, _, port = host.rpartition(":")
        self.sock = socket.create_connection(
            (name, int(port)), timeout=_CONNECT_TIMEOUT_S
        )
        self.sock.settimeout(None)
        self.alive = True
        self._send_lock = threading.Lock()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-remote-{host}",
            daemon=True,
        )
        self._reader.start()

    def send(self, message: Any) -> bool:
        """Frame + send; False (never raise) when the link is gone."""
        try:
            payload = pickle.dumps(message, _WIRE_PROTOCOL)
        except Exception:  # pragma: no cover - unpicklable task fn
            raise
        frame = struct.pack("!I", len(payload)) + payload
        with self._send_lock:
            try:
                self.sock.sendall(frame)
            except OSError:
                return False
        return True

    def _read_loop(self) -> None:
        try:
            while True:
                message = _recv_frame(self.sock)
                if message is None:
                    break
                self.events.put((self, message))
        except Exception as error:
            self.events.put((self, ("lost", error)))
            return
        self.events.put((self, ("lost", None)))

    def close(self, farewell: bool = True) -> None:
        if farewell and self.alive:
            self.send(("bye",))
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


class RemoteWorkerPool:
    """Persistent connections to one ``hosts`` set, reused per sweep."""

    def __init__(self, hosts: Sequence[str]) -> None:
        self.hosts = tuple(hosts)
        self.events: "queue.Queue[Tuple[Any, Any]]" = queue.Queue()
        self.conns: List[_RemoteConnection] = []
        for host in self.hosts:
            try:
                self.conns.append(_RemoteConnection(host, self.events))
            except OSError as error:
                self.close()
                raise ConfigurationError(
                    f"cannot connect to sweep worker at {host!r}: {error}"
                ) from error

    def live_conns(self) -> List[_RemoteConnection]:
        return [conn for conn in self.conns if conn.alive]

    def reconnect_dead(self) -> None:
        """Best-effort revival of links lost in an earlier sweep."""
        for position, conn in enumerate(self.conns):
            if conn.alive:
                continue
            try:
                self.conns[position] = _RemoteConnection(
                    conn.host, self.events
                )
            except OSError:
                pass  # still down; the sweep runs on the survivors

    def close(self) -> None:
        for conn in self.conns:
            conn.close()
        self.conns = []


def _get_remote_pool(hosts: Sequence[str]) -> RemoteWorkerPool:
    global _REMOTE_POOL
    hosts = tuple(hosts)
    pool = _REMOTE_POOL
    if pool is not None and pool.hosts != hosts:
        pool.close()
        pool = None
    if pool is None:
        pool = RemoteWorkerPool(hosts)
        _REMOTE_POOL = pool
    else:
        pool.reconnect_dead()
    return pool


def remote_pool_hosts() -> Tuple[str, ...]:
    """Hosts of the live persistent connection pool (diagnostics)."""
    pool = _REMOTE_POOL
    if pool is None:
        return ()
    return tuple(conn.host for conn in pool.live_conns())


# ---------------------------------------------------------------------------
# Loopback workers


def start_loopback_workers(
    count: int, cache_dir: "Optional[str | Path]" = None
) -> List[str]:
    """Spawn ``count`` ``repro worker`` subprocesses on loopback ports.

    Each runs the same interpreter and source tree as this process
    (``PYTHONPATH`` is derived from the imported package, so this
    works from a source checkout and an installed wheel alike) and
    prints its bound address on stdout, which is parsed here. Returns
    the ``host:port`` list, ready for :func:`configure_sweep_hosts`;
    the subprocesses are reaped by :func:`shutdown_remote_workers`.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    # A worker must never recurse into socket dispatch for its own
    # cells (mirrors the fork pool's nested-serial degradation).
    env.pop(SWEEP_HOSTS_ENV, None)
    hosts: List[str] = []
    for _ in range(count):
        command = [
            sys.executable, "-m", "repro", "worker",
            "--host", "127.0.0.1", "--port", "0",
        ]
        if cache_dir is not None:
            command += ["--cache-dir", str(cache_dir)]
        proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        _LOOPBACK_PROCS.append(proc)
        line = proc.stdout.readline() if proc.stdout else ""
        if WORKER_READY_PREFIX not in line:
            shutdown_remote_workers()
            raise ConfigurationError(
                f"loopback worker failed to start (got {line!r})"
            )
        hosts.append(line.strip().rsplit(" ", 1)[-1])
    return hosts


def loopback_worker_procs() -> List[subprocess.Popen]:
    """Live loopback worker subprocess handles (tests kill these)."""
    return [proc for proc in _LOOPBACK_PROCS if proc.poll() is None]


def shutdown_remote_workers() -> None:
    """Close worker connections and reap loopback subprocesses.

    Idempotent and safe at any time — the socket-backend half of
    :func:`repro.experiments.parallel.shutdown_worker_pool`, also run
    atexit and on the serve daemon's SIGTERM drain, so no test or
    daemon shutdown leaks a ``repro worker`` process.
    """
    global _REMOTE_POOL
    pool, _REMOTE_POOL = _REMOTE_POOL, None
    if pool is not None:
        pool.close()
    procs, _LOOPBACK_PROCS[:] = list(_LOOPBACK_PROCS), []
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck
            proc.kill()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        if proc.stdout is not None:
            proc.stdout.close()


atexit.register(shutdown_remote_workers)


# ---------------------------------------------------------------------------
# Topology accounting


def _note_host_totals(
    host: str, cells: int = 0, sent: int = 0, received: int = 0
) -> None:
    totals = _HOST_TOTALS.setdefault(
        host,
        {"cells": 0, "delta_bytes_sent": 0, "delta_bytes_received": 0},
    )
    totals["cells"] += cells
    totals["delta_bytes_sent"] += sent
    totals["delta_bytes_received"] += received


def reset_topology_counters() -> None:
    """Zero the cumulative per-host counters (tests, benchmarks)."""
    _HOST_TOTALS.clear()


def executor_topology() -> Dict[str, Any]:
    """The executor's current shape, for ``--list`` and ``/status``.

    ``backend`` reflects what the *next* sweep would use (socket when
    hosts are configured, fork otherwise); the per-host counters are
    cumulative over this process's socket sweeps.
    """
    hosts = active_sweep_hosts()
    per_host = {h: dict(t) for h, t in sorted(_HOST_TOTALS.items())}
    return {
        "backend": "socket" if hosts else "fork",
        "hosts": list(hosts),
        "host_cells": {h: t["cells"] for h, t in per_host.items()},
        "delta_bytes_sent": sum(
            t["delta_bytes_sent"] for t in per_host.values()
        ),
        "delta_bytes_received": sum(
            t["delta_bytes_received"] for t in per_host.values()
        ),
    }


# ---------------------------------------------------------------------------
# Parent side: the streaming sweep


def remote_stream(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    hosts: Sequence[str],
    progress: Optional[Callable[[int, int], None]] = None,
    warm_prefix: Optional[Tuple[Any, ...]] = None,
    warm_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    prefetch_keys: Optional[Sequence[Any]] = None,
) -> Iterator[Tuple[int, Any]]:
    """The socket-backend streaming loop (see the module docstring).

    Same contract as the fork backend's ``_parallel_stream``: yields
    ``(index, result)`` in index order as chunks land, merges cache
    deltas incrementally, honours ``deadline`` and early close, and
    records a :class:`repro.experiments.parallel.SweepExecution` with
    ``backend="socket"`` plus per-host cell counts and shard-byte
    traffic. Host death mid-sweep recomputes the lost cells in-parent.
    """
    global _SWEEP_SEQ
    items = list(items)
    total = len(items)
    pre_existing = _REMOTE_POOL is not None
    pool = _get_remote_pool(hosts)
    _SWEEP_SEQ += 1
    seq = _SWEEP_SEQ
    generation = _simcache.simulation_cache_generation()
    cache_dir = _simcache.simulation_cache_dir()

    # -- handshake: collect every live worker's digest set ----------------
    conns = pool.live_conns()
    awaiting = []
    for conn in conns:
        if conn.send(("sync", seq, generation)):
            awaiting.append(conn)
        else:
            conn.alive = False
    states: Dict[_RemoteConnection, Set[str]] = {}
    sync_deadline = time.monotonic() + _SYNC_TIMEOUT_S
    while len(states) < len(awaiting) and time.monotonic() < sync_deadline:
        remaining = [c for c in awaiting if c not in states and c.alive]
        if not remaining:
            break
        try:
            conn, message = pool.events.get(timeout=_POLL_S)
        except queue.Empty:
            continue
        if conn not in awaiting or conn in states:
            continue
        kind = message[0]
        if kind == "lost":
            conn.alive = False
        elif kind == "state" and message[1] == seq:
            fingerprint = message[2]
            if fingerprint != schema_fingerprint():
                raise ConfigurationError(
                    f"sweep worker {conn.host} runs a different result "
                    f"schema (fingerprint {fingerprint!r} != "
                    f"{schema_fingerprint()!r}); deploy the same wheel "
                    "on every host"
                )
            states[conn] = set(message[3])
    conns = [conn for conn in awaiting if conn in states and conn.alive]
    if not conns:
        raise ConfigurationError(
            "no live sweep workers among configured hosts "
            f"{tuple(pool.hosts)!r}"
        )

    # -- warm-start broadcast as hash-sharded deltas -----------------------
    bytes_sent = 0
    shard_workers = 0
    budget = _parallel._warm_broadcast_budget(warm_budget)
    encoded: List[Tuple[str, bytes]] = []
    broadcast_entries = broadcast_bytes = 0
    if budget > 0:
        entries, _selected = _simcache.select_simulation_cache_entries(
            prefix=warm_prefix, max_bytes=budget
        )
        encoded, _extras = _shard_entries(entries, set())
    for conn in conns:
        missing = [
            (digest, payload)
            for digest, payload in encoded
            if digest not in states[conn]
        ]
        if not missing:
            continue
        groups: Dict[str, List[Tuple[str, bytes]]] = {}
        for digest, payload in missing:
            groups.setdefault(digest[:2], []).append((digest, payload))
        if conn.send(("shards", seq, sorted(groups.items()))):
            sent = sum(len(payload) for _, payload in missing)
            bytes_sent += sent
            shard_workers += 1
            broadcast_entries = max(broadcast_entries, len(missing))
            broadcast_bytes += sent
            _note_host_totals(conn.host, sent=sent)

    # -- partition and dispatch -------------------------------------------
    partitions: Dict[_RemoteConnection, List[int]] = {}
    base, extra = divmod(total, len(conns))
    start = 0
    for position, conn in enumerate(conns):
        size = base + (1 if position < extra else 0)
        partitions[conn] = list(range(start, start + size))
        start += size
    parent_digests = _local_digest_set()
    keys = list(prefetch_keys) if prefetch_keys else []
    dispatch_failed: List[_RemoteConnection] = []
    for conn, part in partitions.items():
        if not part:
            continue
        if keys and len(keys) == total:
            part_keys = [keys[index] for index in part]
        else:
            # Key list not 1:1 with cells (batched payload groups):
            # every worker prefetches the full list — warmth-only.
            part_keys = keys
        deadline_s = (
            None
            if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        cells = [(index, items[index]) for index in part]
        sent_ok = conn.send(
            ("run", seq, fn, cells, deadline_s, set(parent_digests),
             part_keys)
        )
        if not sent_ok:
            conn.alive = False
            dispatch_failed.append(conn)

    # -- stream chunks back, in-parent recovery for lost hosts -------------
    received: Set[int] = set()
    pending: Dict[int, Any] = {}
    next_yield = 0
    merged = duplicates = hits = misses = disk_hits = 0
    redispatched = 0
    bytes_received = 0
    host_cells: Dict[str, int] = {conn.host: 0 for conn in conns}
    finished: Set[_RemoteConnection] = set()
    failure: Optional[BaseException] = None

    def absorb_local(chunk: Tuple[Any, ...]) -> Tuple[int, Any]:
        """Merge one in-parent recompute's raw delta (fork-path shape)."""
        nonlocal merged, duplicates, hits, misses, disk_hits
        index, result, entries, d_hits, d_misses, d_disk = chunk
        stats = _simcache.merge_simulation_cache(
            entries, hits=d_hits, misses=d_misses, disk_hits=d_disk
        )
        merged += stats.inserted
        duplicates += stats.duplicates
        hits += d_hits
        misses += d_misses
        disk_hits += d_disk
        return index, result

    def recover_indexes(indexes: List[int]) -> Iterator[Tuple[int, Any]]:
        """Recompute lost cells in-parent; yields rows come due."""
        nonlocal redispatched, failure, next_yield
        for index in indexes:
            if index in received or failure is not None:
                continue
            if deadline is not None and time.monotonic() >= deadline:
                failure = DeadlineExceededError(
                    f"sweep deadline passed after {len(received)}/{total}"
                    " cells"
                )
                return
            try:
                chunk = _parallel._run_cell(
                    (fn, index, items[index], generation, cache_dir)
                )
            except BaseException as error:  # noqa: BLE001
                failure = error
                return
            redispatched += 1
            index, result = absorb_local(chunk)
            received.add(index)
            if progress is not None:
                progress(len(received), total)
            pending[index] = result
            while next_yield in pending:
                yield next_yield, pending.pop(next_yield)
                next_yield += 1

    try:
        for conn in dispatch_failed:
            yield from recover_indexes(partitions[conn])
        while len(received) < total and failure is None:
            if deadline is not None and time.monotonic() >= deadline:
                failure = DeadlineExceededError(
                    f"sweep deadline passed after {len(received)}/{total}"
                    " cells"
                )
                break
            live_unfinished = [
                conn
                for conn in partitions
                if conn.alive and conn not in finished
            ]
            if not live_unfinished:
                # Every host is done or dead yet cells are missing
                # (a worker stopped at its deadline slightly before
                # ours, or died without a lost event): finish in-parent.
                yield from recover_indexes(
                    [i for i in range(total) if i not in received]
                )
                continue
            try:
                conn, message = pool.events.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            if conn not in partitions:
                continue
            kind = message[0]
            if kind == "lost":
                if conn.alive:
                    conn.alive = False
                    yield from recover_indexes(partitions[conn])
                continue
            if len(message) < 2 or message[1] != seq:
                continue
            if kind == "chunk":
                (_, _, index, result, shards, extras,
                 d_hits, d_misses, d_disk) = message
                if index in received:
                    continue
                shard_bytes = sum(len(p) for _, p in shards)
                bytes_received += shard_bytes
                _note_host_totals(
                    conn.host, cells=1, received=shard_bytes
                )
                reached = _merge_shard_payloads(
                    shards, extras,
                    hits=d_hits, misses=d_misses, disk_hits=d_disk,
                )
                merged += reached
                hits += d_hits
                misses += d_misses
                disk_hits += d_disk
                received.add(index)
                host_cells[conn.host] = host_cells.get(conn.host, 0) + 1
                if progress is not None:
                    progress(len(received), total)
                pending[index] = result
                while next_yield in pending:
                    yield next_yield, pending.pop(next_yield)
                    next_yield += 1
            elif kind == "done":
                finished.add(conn)
            elif kind == "error":
                finished.add(conn)
                if failure is None:
                    failure = RemoteWorkerError(
                        f"sweep worker {conn.host} failed a cell:\n"
                        f"{message[2]}"
                    )
    finally:
        # Early close, deadline, or failure: stop the workers, then
        # drain until each live partitioned link confirms it is
        # quiescent (done/error) so the persistent connections stay
        # frame-aligned for the next sweep. Cache deltas of late
        # chunks are kept — the simulator is pure.
        if len(received) < total:
            for conn in partitions:
                if conn.alive and conn not in finished:
                    if not conn.send(("stop",)):
                        conn.alive = False
        drain_deadline = time.monotonic() + _SYNC_TIMEOUT_S
        while (
            any(c.alive and c not in finished for c in partitions)
            and time.monotonic() < drain_deadline
        ):
            try:
                conn, message = pool.events.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            if conn not in partitions:
                continue
            kind = message[0]
            if kind == "lost":
                conn.alive = False
                continue
            if len(message) < 2 or message[1] != seq:
                continue
            if kind == "chunk":
                (_, _, index, _result, shards, extras,
                 d_hits, d_misses, d_disk) = message
                shard_bytes = sum(len(p) for _, p in shards)
                bytes_received += shard_bytes
                _note_host_totals(conn.host, received=shard_bytes)
                _merge_shard_payloads(
                    shards, extras,
                    hits=d_hits, misses=d_misses, disk_hits=d_disk,
                )
                if index not in received:
                    received.add(index)
                    host_cells[conn.host] = (
                        host_cells.get(conn.host, 0) + 1
                    )
                    _note_host_totals(conn.host, cells=1)
            elif kind in ("done", "error"):
                finished.add(conn)
        for conn in partitions:
            if conn.alive and conn not in finished:
                # Desynced beyond repair; reconnect next sweep.
                conn.close(farewell=False)
        _parallel._LAST_EXECUTION = _parallel.SweepExecution(
            jobs=len(conns), tasks=total, merged_entries=merged,
            duplicate_entries=duplicates, worker_hits=hits,
            worker_misses=misses, worker_disk_hits=disk_hits,
            pool_reused=pre_existing, completed=len(received),
            cancelled=failure is None and len(received) < total,
            broadcast_entries=broadcast_entries,
            broadcast_bytes=broadcast_bytes,
            broadcast_workers=shard_workers,
            redispatched_cells=redispatched,
            backend="socket",
            hosts=tuple(conn.host for conn in conns),
            host_cells=tuple(sorted(host_cells.items())),
            delta_bytes_sent=bytes_sent,
            delta_bytes_received=bytes_received,
        )
    if failure is not None:
        raise failure
