"""Process-pool execution of embarrassingly parallel experiment sweeps.

The paper's headline tables are cartesian grids of independent
``(system, scheme, engine)`` cells — ideal fan-out work. This module is
the one process-pool front door every sweep harness shares
(:func:`repro.experiments.grid.run_grid`,
:func:`repro.experiments.speedups.sweep_speedups`, ``batch_sweep``,
``sensitivity``, and the CLI's ``--jobs`` flags all route through
:func:`parallel_map`).

Execution model
---------------

* Tasks are striped round-robin across ``jobs`` partitions (task ``i``
  lands in partition ``i % jobs``), so heterogeneous cells — a cheap
  software-kernel cell next to an expensive DECA one — balance without a
  work queue. Results are re-interleaved, so the returned list is in
  input order, exactly as a serial ``[fn(x) for x in items]``.
* Workers are forked (POSIX ``fork`` start method): each child inherits
  the parent's warm simulation cache for free and runs its partition
  through the existing memoized front door
  (:func:`repro.sim.pipeline.simulate_tile_stream`).
* On join each worker ships back only the cache entries it *added*
  (inherited keys are snapshotted at partition start) plus its hit/miss
  deltas; the parent folds them in via
  :func:`repro.sim.cache.merge_simulation_cache`, keyed by the same
  ``simulation_key``. Duplicate keys across workers must resolve
  bit-identically (asserted in debug mode) — the simulator is pure, so
  anything else is a bug.

Degradation contract
--------------------

``jobs=1``, a single task, or a platform without ``fork`` (Windows,
some sandboxes) all run the plain serial loop in-process — no pool, no
pickling, bit-identical to the pre-parallel code path. Nested calls
(a task function that itself calls :func:`parallel_map`) also degrade
to serial inside workers rather than forking grandchildren.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.sim import cache as _simcache

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set in pool workers (via the pool initializer) so nested parallel_map
#: calls degrade to serial instead of forking grandchildren — pool
#: workers are daemonic and cannot spawn children anyway.
_IN_WORKER = False


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_jobs(jobs: Optional[int], tasks: int) -> int:
    """The worker count actually used for ``tasks`` items.

    ``None`` (or ``0``) means "auto": one worker per available CPU.
    The result is clamped to the task count, and collapses to 1 when
    the platform lacks ``fork`` or when already inside a pool worker —
    the serial degradation contract.
    """
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if _IN_WORKER or not fork_available():
        return 1
    return max(1, min(jobs, tasks))


@dataclass(frozen=True)
class SweepExecution:
    """What the last :func:`parallel_map` call in this process did."""

    jobs: int
    tasks: int
    merged_entries: int
    duplicate_entries: int
    worker_hits: int
    worker_misses: int


#: Report of the most recent parallel_map call (diagnostics/tests).
_LAST_EXECUTION: Optional[SweepExecution] = None


def last_sweep_execution() -> Optional[SweepExecution]:
    """The most recent :func:`parallel_map` execution report, if any."""
    return _LAST_EXECUTION


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _run_partition(
    payload: Tuple[Callable[[Any], Any], List[Any]]
) -> Tuple[List[Any], List[Tuple[Any, Any]], int, int]:
    """Worker body: run one partition, report new cache entries + deltas."""
    fn, part = payload
    baseline_keys = _simcache.simulation_cache_keys()
    before = _simcache.simulation_cache_stats()
    results = [fn(item) for item in part]
    after = _simcache.simulation_cache_stats()
    new_entries = [
        (key, value)
        for key, value in _simcache.export_simulation_cache()
        if key not in baseline_keys
    ]
    return (
        results,
        new_entries,
        after.hits - before.hits,
        after.misses - before.misses,
    )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally fanned out across processes.

    ``fn`` must be a module-level callable (pickled by reference) and
    pure with respect to the simulation cache — the standard shape of
    every sweep cell in this package. With ``jobs=1`` (the default)
    this *is* the serial comprehension; with more, partitions run in
    forked workers and their cache entries are merged on join (see the
    module docstring for the full contract).
    """
    global _LAST_EXECUTION
    items = list(items)
    n_jobs = resolve_jobs(jobs, len(items))
    if n_jobs <= 1:
        results = [fn(item) for item in items]
        _LAST_EXECUTION = SweepExecution(
            jobs=1, tasks=len(items), merged_entries=0,
            duplicate_entries=0, worker_hits=0, worker_misses=0,
        )
        return results
    partitions = [items[offset::n_jobs] for offset in range(n_jobs)]
    context = multiprocessing.get_context("fork")
    with context.Pool(n_jobs, initializer=_mark_worker) as pool:
        payloads = pool.map(
            _run_partition, [(fn, part) for part in partitions]
        )
    results: List[Any] = [None] * len(items)
    merged = duplicates = hits = misses = 0
    for offset, (part_results, entries, d_hits, d_misses) in enumerate(
        payloads
    ):
        results[offset::n_jobs] = part_results
        stats = _simcache.merge_simulation_cache(
            entries, hits=d_hits, misses=d_misses
        )
        merged += stats.inserted
        duplicates += stats.duplicates
        hits += d_hits
        misses += d_misses
    _LAST_EXECUTION = SweepExecution(
        jobs=n_jobs, tasks=len(items), merged_entries=merged,
        duplicate_entries=duplicates, worker_hits=hits,
        worker_misses=misses,
    )
    return results
