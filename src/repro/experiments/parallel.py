"""Process-pool execution of embarrassingly parallel experiment sweeps.

The paper's headline tables are cartesian grids of independent
``(system, scheme, engine)`` cells — ideal fan-out work. This module is
the one process-pool front door every sweep harness shares
(:func:`repro.experiments.grid.run_grid`,
:func:`repro.experiments.speedups.sweep_speedups`, ``batch_sweep``,
``sensitivity``, and the CLI's ``--jobs`` flags all route through
:func:`parallel_map`).

Execution model
---------------

* Tasks are striped round-robin across ``jobs`` partitions (task ``i``
  lands in partition ``i % jobs``), so heterogeneous cells — a cheap
  software-kernel cell next to an expensive DECA one — balance without a
  work queue. Results are re-interleaved, so the returned list is in
  input order, exactly as a serial ``[fn(x) for x in items]``.
* Workers are forked (POSIX ``fork`` start method) into a **persistent
  pool** that lives for the whole invocation: the first ``jobs > 1``
  sweep pays the ~45 ms spin-up, every later sweep reuses the same
  worker processes (the pool is rebuilt only when a sweep needs a
  *wider* one — a narrower sweep idles the surplus workers — and torn
  down atexit, or explicitly via :func:`shutdown_worker_pool`).
  Each worker inherits the parent's warm simulation cache at pool
  creation and runs its partitions through the existing memoized front
  door (:func:`repro.sim.pipeline.simulate_tile_stream`).
* Because workers outlive individual sweeps, every partition payload
  carries the parent's cache *clear generation* and its cache-dir
  configuration: a worker whose generation lags (the parent called
  ``clear_simulation_cache`` since the fork) drops its own copy before
  running, and a worker whose disk tier differs re-attaches. Clearing
  therefore behaves exactly as with fork-per-sweep; *warmth* can be
  slightly lower — entries merged into the parent after the fork are
  not pushed back out, so a worker may recompute a cell a freshly
  forked pool would have inherited (results are unaffected: the
  simulator is pure; and with a disk tier the worker finds such
  entries on disk anyway).
* On join each worker ships back only the cache entries it *added*
  (inherited keys are snapshotted at partition start) plus its
  hit/miss/disk-hit deltas; the parent folds them in via
  :func:`repro.sim.cache.merge_simulation_cache`, keyed by the same
  ``simulation_key``. Duplicate keys across workers must resolve
  bit-identically (asserted in debug mode) — the simulator is pure, so
  anything else is a bug. With a disk tier configured
  (:mod:`repro.sim.diskcache`), workers spill their computed entries to
  the shared cache directory as they go, and the parent's merge skips
  re-writing them (content-addressed store).

Degradation contract
--------------------

``jobs=1``, a single task, or a platform without ``fork`` (Windows,
some sandboxes) all run the plain serial loop in-process — no pool, no
pickling, bit-identical to the pre-parallel code path. Nested calls
(a task function that itself calls :func:`parallel_map`) also degrade
to serial inside workers rather than forking grandchildren.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.sim import cache as _simcache

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set in pool workers (via the pool initializer) so nested parallel_map
#: calls degrade to serial instead of forking grandchildren — pool
#: workers are daemonic and cannot spawn children anyway.
_IN_WORKER = False


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_jobs(jobs: Optional[int], tasks: int) -> int:
    """The worker count actually used for ``tasks`` items.

    ``None`` (or ``0``) means "auto": one worker per available CPU.
    The result is clamped to the task count, and collapses to 1 when
    the platform lacks ``fork`` or when already inside a pool worker —
    the serial degradation contract.
    """
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if _IN_WORKER or not fork_available():
        return 1
    return max(1, min(jobs, tasks))


@dataclass(frozen=True)
class SweepExecution:
    """What the last :func:`parallel_map` call in this process did."""

    jobs: int
    tasks: int
    merged_entries: int
    duplicate_entries: int
    worker_hits: int
    worker_misses: int
    worker_disk_hits: int = 0
    pool_reused: bool = False


#: Report of the most recent parallel_map call (diagnostics/tests).
_LAST_EXECUTION: Optional[SweepExecution] = None


def last_sweep_execution() -> Optional[SweepExecution]:
    """The most recent :func:`parallel_map` execution report, if any."""
    return _LAST_EXECUTION


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


#: The persistent pool and the worker count it was built with. A pool is
#: created lazily by the first fanned-out sweep, reused by every later
#: sweep in the invocation, rebuilt when the requested width changes,
#: and torn down atexit (or via :func:`shutdown_worker_pool`).
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_JOBS = 0
_ATEXIT_REGISTERED = False


def _get_pool(n_jobs: int) -> multiprocessing.pool.Pool:
    """The persistent worker pool, grown to at least ``n_jobs`` workers.

    A wider-than-needed pool is reused as-is (surplus workers idle
    through the sweep): ``n_jobs`` is clamped to the task count, so a
    small sweep following a large one must not tear down — and
    re-fork — the pool the large sweeps amortize.
    """
    global _POOL, _POOL_JOBS, _ATEXIT_REGISTERED
    if _POOL is not None and _POOL_JOBS < n_jobs:
        shutdown_worker_pool()
    if _POOL is None:
        context = multiprocessing.get_context("fork")
        _POOL = context.Pool(n_jobs, initializer=_mark_worker)
        _POOL_JOBS = n_jobs
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_worker_pool)
            _ATEXIT_REGISTERED = True
    return _POOL


def shutdown_worker_pool() -> None:
    """Tear down the persistent worker pool, if one is alive.

    Safe to call at any time (idempotent); the next fanned-out sweep
    simply forks a fresh pool. Registered atexit so an invocation never
    leaks worker processes.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.close()
        _POOL.join()
        _POOL = None
        _POOL_JOBS = 0


def worker_pool_size() -> int:
    """Width of the live persistent pool (0 when none is alive)."""
    return _POOL_JOBS if _POOL is not None else 0


def worker_pool_pids() -> Tuple[int, ...]:
    """PIDs of the live persistent pool's workers (diagnostics/tests)."""
    if _POOL is None:
        return ()
    return tuple(sorted(worker.pid for worker in _POOL._pool))


def _run_partition(
    payload: Tuple[Callable[[Any], Any], List[Any], int, Optional[str]]
) -> Tuple[List[Any], List[Tuple[Any, Any]], int, int, int]:
    """Worker body: run one partition, report new cache entries + deltas.

    ``generation`` and ``cache_dir`` carry the parent's cache state:
    persistent workers outlive sweeps, so before running they drop their
    in-memory cache if the parent cleared since the fork, and attach the
    parent's disk tier if it changed (both no-ops in the common case).
    """
    fn, part, generation, cache_dir = payload
    _simcache.sync_simulation_cache_generation(generation)
    if _simcache.simulation_cache_dir() != cache_dir:
        _simcache.configure_simulation_cache_dir(cache_dir)
    baseline_keys = _simcache.simulation_cache_keys()
    before = _simcache.simulation_cache_stats()
    results = [fn(item) for item in part]
    after = _simcache.simulation_cache_stats()
    new_entries = [
        (key, value)
        for key, value in _simcache.export_simulation_cache()
        if key not in baseline_keys
    ]
    return (
        results,
        new_entries,
        after.hits - before.hits,
        after.misses - before.misses,
        after.disk_hits - before.disk_hits,
    )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally fanned out across processes.

    ``fn`` must be a module-level callable (pickled by reference) and
    pure with respect to the simulation cache — the standard shape of
    every sweep cell in this package. With ``jobs=1`` (the default)
    this *is* the serial comprehension; with more, partitions run in
    forked workers and their cache entries are merged on join (see the
    module docstring for the full contract).
    """
    global _LAST_EXECUTION
    items = list(items)
    n_jobs = resolve_jobs(jobs, len(items))
    if n_jobs <= 1:
        results = [fn(item) for item in items]
        _LAST_EXECUTION = SweepExecution(
            jobs=1, tasks=len(items), merged_entries=0,
            duplicate_entries=0, worker_hits=0, worker_misses=0,
        )
        return results
    partitions = [items[offset::n_jobs] for offset in range(n_jobs)]
    reused = worker_pool_size() >= n_jobs
    pool = _get_pool(n_jobs)
    generation = _simcache.simulation_cache_generation()
    cache_dir = _simcache.simulation_cache_dir()
    payloads = pool.map(
        _run_partition,
        [(fn, part, generation, cache_dir) for part in partitions],
    )
    results: List[Any] = [None] * len(items)
    merged = duplicates = hits = misses = disk_hits = 0
    for offset, (
        part_results, entries, d_hits, d_misses, d_disk_hits
    ) in enumerate(payloads):
        results[offset::n_jobs] = part_results
        stats = _simcache.merge_simulation_cache(
            entries, hits=d_hits, misses=d_misses, disk_hits=d_disk_hits
        )
        merged += stats.inserted
        duplicates += stats.duplicates
        hits += d_hits
        misses += d_misses
        disk_hits += d_disk_hits
    _LAST_EXECUTION = SweepExecution(
        jobs=n_jobs, tasks=len(items), merged_entries=merged,
        duplicate_entries=duplicates, worker_hits=hits,
        worker_misses=misses, worker_disk_hits=disk_hits,
        pool_reused=reused,
    )
    return results
