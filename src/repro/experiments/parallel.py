"""Process-pool execution of embarrassingly parallel experiment sweeps.

The paper's headline tables are cartesian grids of independent
``(system, scheme, engine)`` cells — ideal fan-out work. This module is
the one execution front door every sweep shares: the declarative specs
in :mod:`repro.experiments.sweepspec` (and through them ``run_grid``,
``sweep_speedups``, ``figure12``/``figure13``, ``batch_sweep``,
``sensitivity``, and the CLI's ``--jobs`` flags) all route through
:func:`stream_map` / :func:`parallel_map`.

Execution model
---------------

* Cells are dispatched **individually** to a pool of forked workers and
  their results stream back as each finishes (an ``imap_unordered``-style
  flow built on ``apply_async`` with a bounded in-flight window, so a
  consumer that stops early also stops *dispatch*). A worker returns a
  ``(cell_index, result, cache_delta)`` chunk the moment its cell is
  done; the parent merges the cache delta immediately and re-sorts
  results by index on the fly, so :func:`stream_map` yields
  ``(0, r0), (1, r1), …`` in input order even when workers complete out
  of order — and the first result is available long before the last
  cell computes.
* Workers are forked (POSIX ``fork`` start method) into a **persistent
  pool** that lives for the whole invocation: the first ``jobs > 1``
  sweep pays the ~45 ms spin-up, every later sweep reuses the same
  worker processes (the pool is rebuilt only when a sweep needs a
  *wider* one — a narrower sweep idles the surplus workers — and torn
  down atexit, or explicitly via :func:`shutdown_worker_pool`).
  Each worker inherits the parent's warm simulation cache at pool
  creation and runs its cells through the existing memoized front
  door (:func:`repro.sim.pipeline.simulate_tile_stream`).
* Because workers outlive individual sweeps, every cell payload
  carries the parent's cache *clear generation* and its cache-dir
  configuration: a worker whose generation lags (the parent called
  ``clear_simulation_cache`` since the fork) drops its own copy before
  running, and a worker whose disk tier differs re-attaches. Clearing
  therefore behaves exactly as with fork-per-sweep; *warmth* can be
  slightly lower — entries merged into the parent after the fork are
  not pushed back out, so a worker may recompute a cell a freshly
  forked pool would have inherited (results are unaffected: the
  simulator is pure; and with a disk tier the worker finds such
  entries on disk anyway).
* Each finished cell ships back only the cache entries that cell
  *added* in its worker (inherited and earlier-cell keys are
  snapshotted at cell start) plus its hit/miss/disk-hit deltas; the
  parent folds them in via
  :func:`repro.sim.cache.merge_simulation_cache`, keyed by the same
  ``simulation_key`` — incrementally, as the chunks arrive, not at a
  barrier join. Duplicate keys across workers must resolve
  bit-identically (asserted in debug mode) — the simulator is pure, so
  anything else is a bug. With a disk tier configured
  (:mod:`repro.sim.diskcache`), workers spill their computed entries to
  the shared cache directory as they go, and the parent's merge skips
  re-writing them (content-addressed store).

Warm-start broadcast (the reverse cache path)
---------------------------------------------

Worker→parent merging alone leaves persistent workers *stale*: entries
merged into the parent after the pool forked (another worker's results,
an earlier sweep in the same invocation) are invisible to them, so a
later sweep revisiting those configurations recomputes — or re-reads
from disk — results the parent already holds in memory. At dispatch
time on a **reused** pool, :func:`stream_map` therefore broadcasts the
parent's relevant in-memory entries out to every worker before the
first cell is submitted:

* relevance is a ``simulation_key`` prefix (``warm_prefix``, typically
  the sweep's ``SimSystem``) — ``None`` ships the MRU entries across
  the board;
* the selection is bounded by a byte budget
  (:data:`WARM_BROADCAST_DEFAULT_BYTES`, overridable per call via
  ``warm_budget`` or globally via ``REPRO_WARM_BROADCAST_BYTES``;
  ``0`` disables the broadcast entirely);
* delivery uses one task per pool worker synchronized on a barrier
  (forked before the pool, so workers inherit it), guaranteeing every
  worker merges the payload exactly once; a broken/timed-out barrier
  degrades to best-effort merges — results are never affected, only
  warmth;
* a freshly forked pool skips the broadcast: those workers inherited
  the parent's whole cache through ``fork`` already.

The broadcast only moves *cache entries*; results are bit-identical
with it on or off — only ``CacheStats`` hit counters (and wall-clock)
change. ``SweepExecution`` records what was shipped
(``broadcast_entries`` / ``broadcast_bytes`` / ``broadcast_workers``).

Cancellation contract
---------------------

Closing a :func:`stream_map` generator early (``break`` in a consumer
loop, ``.close()``) stops dispatching new cells immediately; the
bounded handful already in flight finish in their workers, their cache
deltas are merged so the cache stays consistent, and the persistent
pool remains usable for the next sweep. :func:`last_sweep_execution`
records the early exit (``cancelled=True`` with ``completed`` < tasks).

Socket backend (multi-host sweeps)
----------------------------------

When worker hosts are configured (``--hosts`` on the sweep CLIs, the
``REPRO_SWEEP_HOSTS`` environment variable, or
:func:`repro.experiments.remote.configure_sweep_hosts`),
:func:`stream_map` dispatches through the socket-transport backend in
:mod:`repro.experiments.remote` instead of the local fork pool:
contiguous cell partitions go to N ``repro worker`` processes over
length-prefixed frames, chunks stream back through this module's same
incremental-merge/index-sort path, and cache state is exchanged as
hash-sharded packed deltas deduped against each host's digest set.
Results are bit-identical to the serial and fork paths; host death
recovers by in-parent recompute exactly like the fork backend's
worker-loss path. The host list overrides ``jobs`` — the hosts *are*
the parallelism.

Degradation contract
--------------------

``jobs=1``, a single task, or a platform without ``fork`` (Windows,
some sandboxes) all stream the plain serial loop in-process — no pool,
no pickling, bit-identical to the pre-parallel code path (and the
serial path *still* yields each result as it is computed, so
incremental emission works without workers). Nested calls (a task
function that itself calls :func:`stream_map` / :func:`parallel_map`)
also degrade to serial inside workers rather than forking
grandchildren.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import os
import pickle
import queue
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.sim import cache as _simcache

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Default byte budget for the warm-start broadcast payload (pickled
#: entries shipped to each persistent worker at sweep dispatch).
WARM_BROADCAST_DEFAULT_BYTES = 8 * 1024 * 1024

#: Environment override for the broadcast budget ("0" disables).
WARM_BROADCAST_ENV = "REPRO_WARM_BROADCAST_BYTES"

#: How long a worker waits at the broadcast barrier before degrading to
#: a best-effort merge (seconds).
_BROADCAST_BARRIER_TIMEOUT_S = 30.0

#: Environment escape hatch for the pipelined prefetch broadcast: set
#: to any non-empty value to skip shipping the upcoming keys to workers
#: (they fall back to lazy per-touch disk loads, the pre-v2 behaviour).
PREFETCH_DISABLE_ENV = "REPRO_NO_PREFETCH"

#: Floor of the synchronous prefetch prefix: at least this many keys
#: (or two per worker, whichever is larger) are warmed *before* the
#: prefetch task returns, so the first in-flight window of cells finds
#: a warm LRU instead of racing the background thread.
_PREFETCH_SYNC_MIN = 16

#: How long the streaming join waits with *zero* chunks landing after a
#: worker death was observed before concluding the dead worker took
#: in-flight cells with it and re-dispatching them (seconds; env
#: override below). A killed pool worker is respawned by the pool's
#: maintenance thread, but any cell it was running is silently lost —
#: its callback never fires — so without a re-dispatch the join would
#: block forever on ``done.get()``.
WORKER_LOSS_GRACE_DEFAULT_S = 5.0

#: Environment override for the worker-loss grace period (seconds).
WORKER_LOSS_GRACE_ENV = "REPRO_WORKER_LOSS_GRACE_S"

#: Poll interval of the streaming join's queue waits; bounds how stale
#: the worker-death observation can be, not result latency (a landed
#: chunk wakes the wait immediately).
_JOIN_POLL_S = 0.25

#: Zero-progress stall fallback, as a multiple of the worker-loss grace
#: period: when *nothing* has landed for this long, lost cells are
#: recovered even without an observed worker death (a worker killed
#: while idle wedges the pool's shared task queue — it dies holding the
#: queue's reader lock — and may be respawned before any sweep gets to
#: notice the PID change).
_STALL_GRACE_FACTOR = 8

#: Set in pool workers (via the pool initializer) so nested parallel_map
#: calls degrade to serial instead of forking grandchildren — pool
#: workers are daemonic and cannot spawn children anyway.
_IN_WORKER = False

#: The one validation message for a negative worker count, shared by
#: every layer that resolves ``jobs`` (library sweeps, specs, the CLI).
NEGATIVE_JOBS_ERROR = (
    "jobs must be >= 0 (0 or None = one worker per CPU), got {jobs}"
)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_jobs(jobs: Optional[int], tasks: int) -> int:
    """The worker count actually used for ``tasks`` items.

    ``None`` (or ``0``) means "auto": one worker per available CPU.
    Negative values raise :class:`ConfigurationError` with the shared
    :data:`NEGATIVE_JOBS_ERROR` message. The result is clamped to the
    task count, and collapses to 1 when the platform lacks ``fork`` or
    when already inside a pool worker — the serial degradation
    contract.
    """
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(NEGATIVE_JOBS_ERROR.format(jobs=jobs))
    if _IN_WORKER or not fork_available():
        return 1
    return max(1, min(jobs, tasks))


@dataclass(frozen=True)
class SweepExecution:
    """What the last :func:`stream_map` call in this process did."""

    jobs: int
    tasks: int
    merged_entries: int
    duplicate_entries: int
    worker_hits: int
    worker_misses: int
    worker_disk_hits: int = 0
    pool_reused: bool = False
    #: Cells that actually completed (equals ``tasks`` unless the
    #: consumer closed the stream early).
    completed: int = 0
    #: Whether the stream was closed before every cell ran.
    cancelled: bool = False
    #: Warm-start broadcast: entries shipped to each worker at dispatch,
    #: their total pickled payload size, and how many workers confirmed
    #: the merge (0 0 0 when the broadcast was skipped or disabled).
    broadcast_entries: int = 0
    broadcast_bytes: int = 0
    broadcast_workers: int = 0
    #: Cells re-dispatched after a pool worker died mid-sweep (0 in
    #: healthy runs; see the worker-loss recovery contract).
    redispatched_cells: int = 0
    #: Pipelined prefetch broadcast: keys shipped to each worker at
    #: dispatch, how many workers confirmed the prefetch task, and how
    #: many entries the synchronous prefix warmed across all workers
    #: (0 0 0 when skipped — no disk tier, no keys, or disabled via
    #: ``REPRO_NO_PREFETCH``).
    prefetch_keys: int = 0
    prefetch_workers: int = 0
    prefetched_entries: int = 0
    #: Which executor ran the sweep: ``"serial"`` (in-process loop),
    #: ``"fork"`` (local process pool), or ``"socket"`` (the remote
    #: backend in :mod:`repro.experiments.remote`).
    backend: str = "fork"
    #: Socket-backend topology: the hosts dispatched to and how many
    #: cells each completed (empty for serial/fork sweeps).
    hosts: Tuple[str, ...] = ()
    host_cells: Tuple[Tuple[str, int], ...] = ()
    #: Hash-sharded cache-delta traffic of a socket sweep (shard
    #: payload bytes, each direction; 0 for serial/fork sweeps).
    delta_bytes_sent: int = 0
    delta_bytes_received: int = 0


#: Report of the most recent stream_map call (diagnostics/tests).
_LAST_EXECUTION: Optional[SweepExecution] = None


def last_sweep_execution() -> Optional[SweepExecution]:
    """The most recent :func:`stream_map` execution report, if any."""
    return _LAST_EXECUTION


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


#: The persistent pool and the worker count it was built with. A pool is
#: created lazily by the first fanned-out sweep, reused by every later
#: sweep in the invocation, rebuilt when the requested width changes,
#: and torn down atexit (or via :func:`shutdown_worker_pool`).
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_JOBS = 0
_ATEXIT_REGISTERED = False

#: Whether a long-lived owner (the serve daemon) holds the pool. An
#: owned pool is excluded from the ambient atexit teardown and is never
#: rebuilt wider by a passing sweep — the owner provisioned its width
#: and tears it down itself via :func:`release_worker_pool`.
_POOL_OWNED = False

#: Set when a pool worker is seen to have died (or a sweep stalled with
#: zero progress, which a dead worker can cause without ever being
#: observed). A worker SIGKILLed while blocked on the pool's shared
#: task queue dies *holding the queue's reader lock*, wedging the queue
#: for every surviving worker — so a suspect pool is terminated at
#: teardown rather than gracefully closed (a close/join would block
#: forever waiting for workers that can never drain their queue).
_POOL_SUSPECT = False

#: Serializes pool creation/teardown: the serve daemon dispatches
#: concurrent sweeps onto the shared pool from multiple runner threads.
_POOL_LOCK = threading.Lock()

#: Cumulative count of cell tasks handed to the pool by this process
#: (``apply_async`` submissions; warm-broadcast tasks and in-parent
#: worker-loss recovery excluded). Tests use deltas of this to pin
#: "exactly one sweep's worth of compute happened".
_DISPATCHED_TASKS = 0

#: Barrier synchronizing the warm-start broadcast: created *before* the
#: pool forks (workers inherit it — multiprocessing primitives cannot be
#: pickled into task payloads), parties == pool width.
_POOL_BARRIER = None


def dispatched_task_count() -> int:
    """Cumulative cell tasks this process has handed to the pool."""
    return _DISPATCHED_TASKS


def _get_pool(n_jobs: int) -> multiprocessing.pool.Pool:
    """The persistent worker pool, grown to at least ``n_jobs`` workers.

    A wider-than-needed pool is reused as-is (surplus workers idle
    through the sweep): ``n_jobs`` is clamped to the task count, so a
    small sweep following a large one must not tear down — and
    re-fork — the pool the large sweeps amortize. An *owned* pool is
    never rebuilt either: a sweep asking for more workers than the
    owner provisioned runs at the owned width instead.
    """
    with _POOL_LOCK:
        return _get_pool_locked(n_jobs)


def _get_pool_locked(n_jobs: int) -> multiprocessing.pool.Pool:
    global _POOL, _POOL_JOBS, _ATEXIT_REGISTERED, _POOL_BARRIER
    if _POOL is not None and _POOL_JOBS < n_jobs and not _POOL_OWNED:
        _shutdown_pool_locked()
    if _POOL is None:
        context = multiprocessing.get_context("fork")
        # The broadcast barrier must exist before the fork so workers
        # see the same object through inherited memory.
        _POOL_BARRIER = context.Barrier(n_jobs)
        _POOL = context.Pool(n_jobs, initializer=_mark_worker)
        _POOL_JOBS = n_jobs
        if not _ATEXIT_REGISTERED:
            atexit.register(_ambient_pool_teardown)
            _ATEXIT_REGISTERED = True
    return _POOL


def shutdown_worker_pool() -> None:
    """Tear down the persistent worker pool, if one is alive.

    Safe to call at any time (idempotent); the next fanned-out sweep
    simply forks a fresh pool. This is the *explicit* teardown and
    applies even to an owned pool — owners wanting their pool spared
    from housekeeping are protected only from the ambient atexit hook
    (:func:`_ambient_pool_teardown`), not from a deliberate call.

    Also tears down the socket backend's half, when it was ever used:
    worker connections close and loopback ``repro worker``
    subprocesses are reaped, so no test or shutdown path leaks them.
    """
    with _POOL_LOCK:
        _shutdown_pool_locked()
    remote = sys.modules.get("repro.experiments.remote")
    if remote is not None:
        remote.shutdown_remote_workers()


def _shutdown_pool_locked() -> None:
    global _POOL, _POOL_JOBS, _POOL_BARRIER, _POOL_SUSPECT
    if _POOL is not None:
        if _POOL_SUSPECT:
            # A worker died on this pool; its shared task queue may be
            # wedged (see _POOL_SUSPECT), so never close/join — the
            # survivors might never see their shutdown sentinels. Even
            # ``Pool.terminate`` is unsafe as-is: its drain helper
            # acquires the task queue's reader lock, which the victim
            # may have died *holding*. Kill the surviving workers
            # first (none can then re-grab the lock), force the
            # orphaned lock open, and only then terminate.
            for worker in list(getattr(_POOL, "_pool", [])):
                if worker.pid is not None:
                    try:
                        os.kill(worker.pid, signal.SIGKILL)
                    except OSError:
                        pass
            # A worker can die holding either of two queue locks: the
            # task queue's reader lock (killed mid-task-read) or the
            # result queue's writer lock (killed mid-result-send). The
            # latter wedges ``_terminate_pool`` itself — its sentinel
            # ``outqueue.put(None)`` acquires that lock. Free both;
            # releasing an unheld lock raises ValueError and is skipped.
            for orphaned in (
                lambda: _POOL._inqueue._rlock,
                lambda: _POOL._outqueue._wlock,
            ):
                try:
                    orphaned().release()
                except (AttributeError, ValueError, OSError):
                    pass  # lock was not held — nothing to free
            _POOL.terminate()
        else:
            _POOL.close()
        _POOL.join()
        _POOL = None
        _POOL_JOBS = 0
        _POOL_BARRIER = None
        _POOL_SUSPECT = False


def _mark_pool_suspect() -> None:
    """Record that the live pool may have lost a worker (see above)."""
    global _POOL_SUSPECT
    _POOL_SUSPECT = True


def _ambient_pool_teardown() -> None:
    """atexit hook: tear down the pool *unless an owner holds it*.

    A daemon that claimed the pool may still be draining in-flight
    cells while the interpreter's atexit machinery runs (a SIGTERM-
    initiated shutdown unwinds through here); closing the pool under
    it would poison those cells. The owner is responsible for calling
    :func:`release_worker_pool` on its own drain path instead.
    """
    if not _POOL_OWNED:
        shutdown_worker_pool()


def claim_worker_pool(jobs: Optional[int] = None) -> int:
    """Fork (or adopt) the persistent pool and take ownership of it.

    A long-lived owner — the serve daemon — calls this once at startup:
    the pool is created at ``jobs`` width (``None``/``0`` = one worker
    per CPU) if none is alive, and ownership then excludes it from both
    the ambient atexit teardown and the wider-sweep rebuild in the pool
    getter, so module-level housekeeping can never tear the pool down
    underneath the owner's in-flight sweeps. Returns the width actually
    held (1 on platforms without ``fork``, where there is no pool to
    own). The owner must call :func:`release_worker_pool` on shutdown.

    A ``jobs=1`` claim forks no pool but still takes ownership: claim
    and release are symmetric at every width, so an owner's teardown
    path never has to reason about whether its startup claim "counted".
    """
    global _POOL_OWNED
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(NEGATIVE_JOBS_ERROR.format(jobs=jobs))
    if _IN_WORKER or not fork_available():
        return 1
    with _POOL_LOCK:
        if jobs > 1:
            _get_pool_locked(jobs)
        _POOL_OWNED = True
        return _POOL_JOBS if _POOL is not None else 1


def release_worker_pool() -> None:
    """Relinquish pool ownership and tear the pool down (idempotent)."""
    global _POOL_OWNED
    with _POOL_LOCK:
        _POOL_OWNED = False
        _shutdown_pool_locked()


def worker_pool_owned() -> bool:
    """Whether a long-lived owner currently holds the persistent pool."""
    return _POOL_OWNED


def worker_pool_size() -> int:
    """Width of the live persistent pool (0 when none is alive)."""
    return _POOL_JOBS if _POOL is not None else 0


def worker_pool_pids() -> Tuple[int, ...]:
    """PIDs of the live persistent pool's workers (diagnostics/tests)."""
    if _POOL is None:
        return ()
    return tuple(sorted(worker.pid for worker in _POOL._pool))


def _run_cell(
    payload: Tuple[Callable[[Any], Any], int, Any, int, Optional[str]]
) -> Tuple[int, Any, List[Tuple[Any, Any]], int, int, int]:
    """Worker body: run one cell, report its new cache entries + deltas.

    ``generation`` and ``cache_dir`` carry the parent's cache state:
    persistent workers outlive sweeps, so before running they drop their
    in-memory cache if the parent cleared since the fork, and attach the
    parent's disk tier if it changed (both no-ops in the common case).
    The returned chunk is the streaming-join unit: the cell's index, its
    result, the cache entries this cell *added* in this worker, and the
    hit/miss/disk-hit deltas it incurred.
    """
    fn, index, item, generation, cache_dir = payload
    _simcache.sync_simulation_cache_generation(generation)
    if _simcache.simulation_cache_dir() != cache_dir:
        _simcache.configure_simulation_cache_dir(cache_dir)
    baseline_keys = _simcache.simulation_cache_keys()
    before = _simcache.simulation_cache_stats()
    result = fn(item)
    after = _simcache.simulation_cache_stats()
    new_entries = [
        (key, value)
        for key, value in _simcache.export_simulation_cache()
        if key not in baseline_keys
    ]
    return (
        index,
        result,
        new_entries,
        after.hits - before.hits,
        after.misses - before.misses,
        after.disk_hits - before.disk_hits,
    )


def _worker_loss_grace() -> float:
    """Resolve the worker-loss grace period (env override > default)."""
    raw = os.environ.get(WORKER_LOSS_GRACE_ENV)
    if raw is not None:
        try:
            return max(0.05, float(raw))
        except ValueError:
            pass
    return WORKER_LOSS_GRACE_DEFAULT_S


def _warm_broadcast_budget(warm_budget: Optional[int]) -> int:
    """Resolve the broadcast byte budget (call arg > env > default)."""
    if warm_budget is not None:
        return max(0, int(warm_budget))
    raw = os.environ.get(WARM_BROADCAST_ENV)
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError:
            return WARM_BROADCAST_DEFAULT_BYTES
    return WARM_BROADCAST_DEFAULT_BYTES


def _absorb_warm_entries(payload: bytes) -> int:
    """Worker body of the warm-start broadcast: merge parent entries.

    One such task is submitted per pool worker; the inherited barrier
    holds each worker until all of them have picked one up, so no
    worker can drain two (and none is skipped). After the rendezvous,
    each worker syncs its cache generation/disk tier to the parent's
    and merges the shipped entries into its in-memory cache. A broken
    or timed-out barrier degrades to a best-effort merge — the merge is
    idempotent and affects only cache warmth, never results.

    ``payload`` is the parent's pre-pickled ``(generation, cache_dir,
    entries)`` blob: pickling once and shipping bytes keeps dispatch
    cost independent of the pool width (re-pickling bytes per worker
    is a memcpy, re-pickling the entries would not be).
    """
    generation, cache_dir, entries = pickle.loads(payload)
    barrier = _POOL_BARRIER
    if barrier is not None:
        try:
            barrier.wait(timeout=_BROADCAST_BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:  # pragma: no cover - degraded
            pass
    _simcache.sync_simulation_cache_generation(generation)
    if _simcache.simulation_cache_dir() != cache_dir:
        _simcache.configure_simulation_cache_dir(cache_dir)
    stats = _simcache.merge_simulation_cache(entries)
    return stats.inserted + stats.duplicates


def _broadcast_warm_entries(
    pool: multiprocessing.pool.Pool,
    generation: int,
    cache_dir: Optional[str],
    entries: List[Tuple[Any, Any]],
) -> int:
    """Ship ``entries`` to every worker of ``pool``; workers reached.

    Blocks until each worker has merged the payload (one barrier
    round-trip), so the cells dispatched right after find warm caches.
    Failures degrade silently to a colder sweep — never a failed one.
    """
    width = _POOL_JOBS
    payload = pickle.dumps(
        (generation, cache_dir, entries), pickle.HIGHEST_PROTOCOL
    )
    pending = [
        pool.apply_async(_absorb_warm_entries, (payload,))
        for _ in range(width)
    ]
    reached = 0
    for handle in pending:
        try:
            handle.get(timeout=2 * _BROADCAST_BARRIER_TIMEOUT_S)
            reached += 1
        except Exception:  # pragma: no cover - degraded broadcast
            pass
    return reached


def prefetch_enabled() -> bool:
    """Whether the pipelined prefetch broadcast is enabled.

    ``REPRO_NO_PREFETCH`` (any value other than empty or ``"0"``,
    mirroring ``REPRO_NO_BATCH``/``REPRO_NO_PACK``) routes workers back
    to lazy disk loads — the escape hatch for debugging warmth issues
    or pinning pre-v2 behaviour.
    """
    env = os.environ.get(PREFETCH_DISABLE_ENV, "")
    return not env or env == "0"


#: Worker-local cancellation handle of the background prefetch thread.
#: A new sweep's prefetch task (or a stop task after a cancelled sweep)
#: sets it, so at most one prefetch thread per worker is ever live.
_PREFETCH_CANCEL: Optional[threading.Event] = None


def _cancel_worker_prefetch() -> None:
    """Stop this worker's background prefetch thread, if one is live."""
    global _PREFETCH_CANCEL
    cancel = _PREFETCH_CANCEL
    if cancel is not None:
        cancel.set()
        _PREFETCH_CANCEL = None


def _start_prefetch(payload: bytes) -> int:
    """Worker body of the prefetch broadcast: warm the LRU from disk.

    One such task is submitted per pool worker, rendezvoused on the
    inherited barrier exactly like the warm-entry broadcast, so every
    worker runs it once. The worker then syncs its cache state to the
    parent's, cancels any prefetch thread left over from an earlier
    sweep, warms a synchronous *prefix* of the keys (sized so the first
    in-flight window of cells lands on a warm LRU), and hands the tail
    to a daemon thread that keeps pipelining loads underneath the
    sweep's real cells. Both the prefix and the tail poll the sweep
    deadline and the cancel event between keys — a cancelled or expired
    sweep stops prefetching within one entry. Returns how many entries
    the synchronous prefix promoted.

    Warmth-only, like every broadcast: prefetched entries are
    counter-neutral disk reads (:meth:`SimulationCache.prefetch`), so
    results and hit/miss accounting are identical with prefetch on or
    off — later real lookups simply land as memory hits instead of
    lazy disk hits.
    """
    generation, cache_dir, keys, deadline, sync_count = pickle.loads(
        payload
    )
    barrier = _POOL_BARRIER
    if barrier is not None:
        try:
            barrier.wait(timeout=_BROADCAST_BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:  # pragma: no cover - degraded
            pass
    global _PREFETCH_CANCEL
    _cancel_worker_prefetch()
    _simcache.sync_simulation_cache_generation(generation)
    if _simcache.simulation_cache_dir() != cache_dir:
        _simcache.configure_simulation_cache_dir(cache_dir)
    cancel = threading.Event()
    _PREFETCH_CANCEL = cancel

    def should_stop() -> bool:
        return cancel.is_set() or (
            deadline is not None and time.monotonic() >= deadline
        )

    warmed = _simcache.prefetch_simulation_keys(
        keys[:sync_count], should_stop=should_stop
    )
    tail = keys[sync_count:]
    if tail and not should_stop():
        thread = threading.Thread(
            target=_simcache.prefetch_simulation_keys,
            args=(tail,),
            kwargs={"should_stop": should_stop},
            name="repro-prefetch",
            daemon=True,
        )
        thread.start()
    return warmed


def _stop_prefetch() -> None:
    """Worker body: cancel this worker's background prefetch (idempotent).

    Submitted fire-and-forget (no barrier — the pool may be mid-drain)
    when a sweep ends early, so a cancelled sweep's workers stop
    touching the disk within one task round-trip instead of walking the
    whole remaining key list.
    """
    _cancel_worker_prefetch()


def _broadcast_prefetch_keys(
    pool: multiprocessing.pool.Pool,
    generation: int,
    cache_dir: Optional[str],
    keys: List[Any],
    deadline: Optional[float],
) -> Tuple[int, int]:
    """Ship the upcoming cells' keys to every worker of ``pool``.

    Blocks until each worker has warmed its synchronous prefix (the
    background tails keep running underneath the sweep). Returns
    ``(workers_reached, entries_sync_warmed)``; failures degrade to a
    colder sweep, never a failed one.
    """
    width = _POOL_JOBS
    sync_count = min(len(keys), max(_PREFETCH_SYNC_MIN, 2 * width))
    payload = pickle.dumps(
        (generation, cache_dir, keys, deadline, sync_count),
        pickle.HIGHEST_PROTOCOL,
    )
    pending = [
        pool.apply_async(_start_prefetch, (payload,))
        for _ in range(width)
    ]
    reached = warmed = 0
    for handle in pending:
        try:
            warmed += handle.get(timeout=2 * _BROADCAST_BARRIER_TIMEOUT_S)
            reached += 1
        except Exception:  # pragma: no cover - degraded broadcast
            pass
    return reached, warmed


def _serial_stream(
    fn: Callable[[_T], _R],
    items: List[_T],
    progress: Optional[Callable[[int, int], None]],
    deadline: Optional[float] = None,
) -> Iterator[Tuple[int, _R]]:
    """The in-process streaming loop (``jobs=1`` / no-fork / nested)."""
    global _LAST_EXECUTION
    completed = 0
    failed = False
    try:
        for index, item in enumerate(items):
            if deadline is not None and time.monotonic() >= deadline:
                failed = True
                raise DeadlineExceededError(
                    f"sweep deadline passed after {completed}/{len(items)} "
                    "cells"
                )
            try:
                result = fn(item)
            except Exception:
                failed = True
                raise
            completed += 1
            if progress is not None:
                progress(completed, len(items))
            yield index, result
    finally:
        # `cancelled` means the *consumer* stopped early (close/break),
        # never that a task blew up — failures re-raise instead.
        _LAST_EXECUTION = SweepExecution(
            jobs=1, tasks=len(items), merged_entries=0,
            duplicate_entries=0, worker_hits=0, worker_misses=0,
            completed=completed,
            cancelled=not failed and completed < len(items),
            backend="serial",
        )


def _parallel_stream(
    fn: Callable[[_T], _R],
    items: List[_T],
    n_jobs: int,
    progress: Optional[Callable[[int, int], None]],
    warm_prefix: Optional[Tuple[Any, ...]] = None,
    warm_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    prefetch_keys: Optional[Sequence[Any]] = None,
) -> Iterator[Tuple[int, _R]]:
    """The fanned-out streaming loop: dispatch cells, join as they land.

    Dispatch is windowed (a couple of cells per worker in flight) so an
    early ``close()`` leaves at most a handful of cells running; those
    are drained — and their cache deltas merged — before the generator
    returns, leaving the persistent pool quiescent for the next sweep.

    On a *reused* pool, the parent first broadcasts its relevant warm
    cache entries to every worker (see the module docstring's
    warm-start broadcast contract); a freshly forked pool inherited
    them already.

    Worker-loss recovery: queue waits poll so the join can notice the
    pool's worker PID set changing (the pool respawns a killed worker,
    but the cells it was running are lost — their callbacks never
    fire). After a death — or a zero-progress stall, which a worker
    killed while idle causes without any observable PID change — once
    no chunk has landed for a grace period
    (:data:`WORKER_LOSS_GRACE_ENV`), every in-flight cell not yet
    received is recomputed *in-parent* (the pool's shared task queue
    may be wedged by the death, so recovery never re-enters it).
    Receipts are de-duplicated by cell index, so a recovery racing its
    original's late completion can never double-merge a cache delta or
    double-yield a row — the sweep's output is identical to a healthy
    run (the simulator is pure).
    """
    global _LAST_EXECUTION, _DISPATCHED_TASKS
    pre_existing = worker_pool_size()
    pool = _get_pool(n_jobs)
    # An owned pool is never rebuilt wider; run at the width we got.
    n_jobs = min(n_jobs, _POOL_JOBS)
    reused = 0 < pre_existing and pre_existing >= n_jobs
    generation = _simcache.simulation_cache_generation()
    cache_dir = _simcache.simulation_cache_dir()
    broadcast_entries = broadcast_bytes = broadcast_workers = 0
    if reused:
        budget = _warm_broadcast_budget(warm_budget)
        if budget > 0:
            entries, total = _simcache.select_simulation_cache_entries(
                prefix=warm_prefix, max_bytes=budget
            )
            if entries:
                broadcast_workers = _broadcast_warm_entries(
                    pool, generation, cache_dir, entries
                )
                broadcast_entries = len(entries)
                broadcast_bytes = total
    # The prefetch broadcast goes to fresh pools too: it warms from the
    # *disk* tier, whose entries a freshly forked worker does not hold
    # in memory any more than a reused one does.
    prefetched_keys = prefetch_workers = prefetched_entries = 0
    key_list = list(prefetch_keys) if prefetch_keys else []
    if key_list and cache_dir is not None and prefetch_enabled():
        prefetch_workers, prefetched_entries = _broadcast_prefetch_keys(
            pool, generation, cache_dir, key_list, deadline
        )
        prefetched_keys = len(key_list)
    done: "queue.Queue[Any]" = queue.Queue()
    total = len(items)
    window = min(total, 2 * n_jobs)
    submitted = 0
    in_flight = 0
    merged = duplicates = hits = misses = disk_hits = 0
    redispatched = 0
    received: set = set()
    outstanding: dict = {}
    pending: dict = {}
    next_yield = 0
    failure: Optional[BaseException] = None
    grace = _worker_loss_grace()
    known_pids = set(worker_pool_pids())
    worker_lost = False
    last_landing = time.monotonic()

    def submit_index(index: int) -> None:
        nonlocal in_flight
        global _DISPATCHED_TASKS
        payload = (fn, index, items[index], generation, cache_dir)
        pool.apply_async(
            _run_cell, (payload,),
            callback=done.put, error_callback=done.put,
        )
        outstanding[index] = outstanding.get(index, 0) + 1
        in_flight += 1
        _DISPATCHED_TASKS += 1

    def submit_next() -> None:
        nonlocal submitted
        if submitted < total:
            submit_index(submitted)
            submitted += 1

    def note_landing(outcome: Any) -> bool:
        """Bookkeep one queue receipt; True when it is a fresh cell."""
        nonlocal in_flight, last_landing
        in_flight -= 1
        last_landing = time.monotonic()
        if isinstance(outcome, BaseException):
            return False
        index = outcome[0]
        count = outstanding.get(index, 0) - 1
        if count > 0:
            outstanding[index] = count
        else:
            outstanding.pop(index, None)
        if index in received:
            # A recovery re-dispatch raced its original's completion;
            # drop the duplicate chunk whole (its entries were merged
            # the first time — the simulator is pure).
            return False
        received.add(index)
        return True

    def check_worker_loss() -> None:
        """Notice the pool's worker PID set changing (a death)."""
        nonlocal known_pids, worker_lost
        current = set(worker_pool_pids())
        if current != known_pids:
            if known_pids - current:
                worker_lost = True
                _mark_pool_suspect()
            known_pids = current

    def quiet_too_long() -> bool:
        return time.monotonic() - last_landing >= grace

    def stalled_too_long() -> bool:
        return (
            time.monotonic() - last_landing
            >= grace * _STALL_GRACE_FACTOR
        )

    def lost_indexes() -> list:
        """In-flight cells with no received result at all."""
        return sorted(set(outstanding) - received)

    def recover_lost() -> None:
        """Run every lost cell *in-parent* and feed it the normal way.

        Recovery never re-enters the pool: the death that lost the
        cells may also have wedged the pool's shared task queue (see
        :data:`_POOL_SUSPECT`), in which case a resubmitted task would
        never be delivered to any worker. Running in-parent is always
        correct — the simulator is pure and receipts de-duplicate by
        cell index, so a recovered cell racing its original's late
        completion can never double-merge or double-yield.
        """
        nonlocal worker_lost, redispatched, last_landing, in_flight
        _mark_pool_suspect()
        for index in lost_indexes():
            payload = (fn, index, items[index], generation, cache_dir)
            outstanding[index] = outstanding.get(index, 0) + 1
            in_flight += 1
            redispatched += 1
            try:
                done.put(_run_cell(payload))
            except BaseException as error:
                done.put(error)
        worker_lost = False
        last_landing = time.monotonic()

    def absorb(chunk: Any) -> Optional[Tuple[int, Any]]:
        """Merge one finished cell's cache delta; return (index, result)."""
        nonlocal merged, duplicates, hits, misses, disk_hits
        index, result, entries, d_hits, d_misses, d_disk = chunk
        stats = _simcache.merge_simulation_cache(
            entries, hits=d_hits, misses=d_misses, disk_hits=d_disk
        )
        merged += stats.inserted
        duplicates += stats.duplicates
        hits += d_hits
        misses += d_misses
        disk_hits += d_disk
        return index, result

    try:
        for _ in range(window):
            submit_next()
        while len(received) < total and failure is None:
            if deadline is not None and time.monotonic() >= deadline:
                # Same early-exit path as a consumer close: stop
                # dispatching, let the finally block drain in-flight
                # cells (their cache deltas stay merged), then raise.
                failure = DeadlineExceededError(
                    f"sweep deadline passed after {len(received)}/{total} "
                    "cells"
                )
                break
            try:
                outcome = done.get(timeout=_JOIN_POLL_S)
            except queue.Empty:
                check_worker_loss()
                if outstanding and (
                    (worker_lost and quiet_too_long()) or stalled_too_long()
                ):
                    recover_lost()
                continue
            fresh = note_landing(outcome)
            if isinstance(outcome, BaseException):
                failure = outcome
                break
            if not fresh:
                continue
            try:
                index, result = absorb(outcome)
            except Exception as error:  # e.g. a merge bit-equality assert
                failure = error
                raise
            submit_next()
            if progress is not None:
                progress(len(received), total)
            pending[index] = result
            while next_yield in pending:
                yield next_yield, pending.pop(next_yield)
                next_yield += 1
    finally:
        # Early close, normal completion, or worker failure all end
        # here: stop dispatching, drain the in-flight cells so the
        # persistent pool is idle, and keep their cache deltas (the
        # simulator is pure — a completed cell's entries are valid
        # whether or not anyone consumed its result). Cells lost to a
        # dead worker are abandoned after the grace period instead of
        # blocking forever — their callbacks will never fire.
        while in_flight:
            try:
                outcome = done.get(timeout=_JOIN_POLL_S)
            except queue.Empty:
                check_worker_loss()
                # Lingering in-flight entries whose index already has a
                # result are orphans — the original submission of an
                # in-parent-recovered cell, or a duplicate — and may
                # never land; don't block the drain on them.
                if quiet_too_long() and (worker_lost or not lost_indexes()):
                    break
                if stalled_too_long():
                    break
                continue
            if not note_landing(outcome):
                if isinstance(outcome, BaseException) and failure is None:
                    failure = outcome
                continue
            try:
                absorb(outcome)
            except Exception as error:  # e.g. a merge bit-equality assert
                if failure is None:
                    failure = error
        if prefetch_workers and len(received) < total:
            # The sweep ended early (close, deadline, failure) with
            # background prefetch threads possibly still walking keys;
            # tell each worker to stop. Fire-and-forget: stopping is an
            # optimization (idle disk reads are harmless), so a wedged
            # pool must not turn it into a hang.
            if not _POOL_SUSPECT:
                for _ in range(_POOL_JOBS):
                    try:
                        pool.apply_async(_stop_prefetch)
                    except Exception:  # pragma: no cover - degraded
                        break
        _LAST_EXECUTION = SweepExecution(
            jobs=n_jobs, tasks=total, merged_entries=merged,
            duplicate_entries=duplicates, worker_hits=hits,
            worker_misses=misses, worker_disk_hits=disk_hits,
            pool_reused=reused, completed=len(received),
            cancelled=failure is None and len(received) < total,
            broadcast_entries=broadcast_entries,
            broadcast_bytes=broadcast_bytes,
            broadcast_workers=broadcast_workers,
            redispatched_cells=redispatched,
            prefetch_keys=prefetched_keys,
            prefetch_workers=prefetch_workers,
            prefetched_entries=prefetched_entries,
        )
    if failure is not None:
        raise failure


def stream_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    warm_prefix: Optional[Tuple[Any, ...]] = None,
    warm_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    prefetch_keys: Optional[Sequence[Any]] = None,
) -> Iterator[Tuple[int, _R]]:
    """Yield ``(index, fn(item))`` pairs in index order, streaming.

    The streaming counterpart of :func:`parallel_map`: results are
    yielded as soon as they (and every lower-indexed cell) are
    available, so a consumer sees the first cell long before the sweep
    finishes. ``fn`` must be a module-level callable (pickled by
    reference) and pure with respect to the simulation cache — the
    standard shape of every sweep cell in this package.

    ``progress`` (if given) is called as ``progress(completed, total)``
    after each cell finishes — in *completion* order, which is not
    necessarily index order.

    ``warm_prefix`` / ``warm_budget`` tune the warm-start broadcast to
    persistent workers (see the module docstring): a ``simulation_key``
    prefix selecting which parent entries are relevant, and a byte
    budget capping the payload (``None`` = ``REPRO_WARM_BROADCAST_BYTES``
    or the 8 MiB default; ``0`` disables).

    Closing the generator early stops dispatch immediately; see the
    module docstring's cancellation contract.

    ``deadline`` (a :func:`time.monotonic` timestamp) bounds the sweep's
    wall clock: once it passes, dispatch stops via the same early-exit
    path as a consumer close — in-flight cells drain and their cache
    deltas merge — and the stream raises
    :class:`repro.errors.DeadlineExceededError`. Cells yielded before
    the expiry remain valid; a running cell is never interrupted, so the
    stream stops within one cell (serial) or one in-flight window
    (parallel) of the deadline.

    ``prefetch_keys`` — the ``simulation_key``s the sweep's cells are
    about to look up, in dispatch order — enables the pipelined
    prefetch broadcast: workers warm their memory LRU from the disk
    tier ahead of the cells that need the entries (see the module
    docstring; ``REPRO_NO_PREFETCH`` disables, and without a disk tier
    the keys are ignored). Warmth-only, like the entry broadcast:
    results are bit-identical with it on or off.
    """
    items = list(items)
    if len(items) > 1 and not _IN_WORKER:
        # Socket backend: configured hosts (--hosts / REPRO_SWEEP_HOSTS)
        # override `jobs` outright — the host list *is* the
        # parallelism. Imported lazily so the fork-only common case
        # never touches the remote module.
        from repro.experiments import remote as _remote

        hosts = _remote.active_sweep_hosts()
        if hosts:
            return _remote.remote_stream(
                fn, items, hosts, progress,
                warm_prefix=warm_prefix, warm_budget=warm_budget,
                deadline=deadline, prefetch_keys=prefetch_keys,
            )
    n_jobs = resolve_jobs(jobs, len(items))
    if n_jobs <= 1:
        return _serial_stream(fn, items, progress, deadline=deadline)
    return _parallel_stream(
        fn, items, n_jobs, progress,
        warm_prefix=warm_prefix, warm_budget=warm_budget,
        deadline=deadline, prefetch_keys=prefetch_keys,
    )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = 1,
    warm_prefix: Optional[Tuple[Any, ...]] = None,
    warm_budget: Optional[int] = None,
) -> List[_R]:
    """``[fn(x) for x in items]``, optionally fanned out across processes.

    The buffered wrapper over :func:`stream_map`: drains the stream and
    returns the full result list in input order. With ``jobs=1`` (the
    default) this is the serial comprehension; with more, cells run in
    forked workers and their cache entries are merged as each cell
    lands (see the module docstring for the full contract, including
    the warm-start broadcast ``warm_prefix``/``warm_budget`` tuning).
    """
    return [
        result
        for _, result in stream_map(
            fn, items, jobs=jobs,
            warm_prefix=warm_prefix, warm_budget=warm_budget,
        )
    ]
