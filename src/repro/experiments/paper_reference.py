"""The paper's reported numbers, used for side-by-side comparison.

Values transcribed from the MICRO 2025 paper; experiment harnesses print
these next to the regenerated numbers, and the test suite asserts the
*qualitative* agreements the reproduction targets (who wins, rough
factors, crossover locations) without requiring exact matches.
"""

from __future__ import annotations

# Table 1: FC-GeMM fraction of next-token time, Llama2-70B (percent).
TABLE1_FRACTIONS = {
    # (memory, input_tokens, batch): percent
    ("DDR", 32, 1): 97.4,
    ("DDR", 128, 1): 97.5,
    ("DDR", 32, 4): 97.3,
    ("DDR", 128, 4): 97.1,
    ("DDR", 32, 16): 96.6,
    ("DDR", 128, 16): 95.5,
    ("HBM", 32, 1): 89.8,
    ("HBM", 128, 1): 89.5,
    ("HBM", 32, 4): 89.4,
    ("HBM", 128, 4): 88.9,
    ("HBM", 32, 16): 88.3,
    ("HBM", 128, 16): 85.9,
}

# Figure 4b: optimal TFLOPS per the roofline (R-L), the Roof-Surface (R-S),
# and the measured value (Real); HBM, N=4.
FIGURE4B_TFLOPS = {
    # scheme: (roofline, roof_surface, real)
    "Q4": (6.3, 2.9, 2.7),
    "Q8": (3.3, 3.3, 2.5),
    "Q8_50%": (5.3, 4.0, 3.6),
    "Q8_30%": (7.8, 4.0, 3.6),
    "Q8_20%": (10.2, 4.0, 3.6),
    "Q8_10%": (14.8, 4.0, 3.6),
    "Q8_5%": (17.5, 4.0, 3.6),
    "Q16_50%": (3.0, 3.0, 2.5),
    "Q16_30%": (4.6, 4.6, 3.3),
    "Q16_20%": (6.3, 5.7, 4.2),
    "Q16_10%": (10.2, 5.8, 5.2),
    "Q16_5%": (14.8, 5.8, 5.5),
}

# Table 3: component utilisation for Q8, N=1, HBM (percent).
TABLE3_UTILIZATION = {
    # (density_percent, system): {"MEM": .., "TMUL": .., "DEC": ..}
    (100, "software"): {"MEM": 74, "TMUL": 14, "DEC": 50},
    (50, "software"): {"MEM": 66, "TMUL": 20, "DEC": 88},
    (20, "software"): {"MEM": 35, "TMUL": 20, "DEC": 89},
    (5, "software"): {"MEM": 19, "TMUL": 20, "DEC": 89},
    (100, "deca"): {"MEM": 93, "TMUL": 18, "DEC": 75},
    (50, "deca"): {"MEM": 92, "TMUL": 28, "DEC": 71},
    (20, "deca"): {"MEM": 91, "TMUL": 53, "DEC": 63},
    (5, "deca"): {"MEM": 73, "TMUL": 79, "DEC": 87},
}

# Table 4: next-token latency in milliseconds (128 in / 128 out tokens).
TABLE4_LATENCY_MS = {
    # (model, batch, scheme, engine): ms
    ("Llama2-70B", 1, "Q16", "software"): 192.3,
    ("Llama2-70B", 1, "Q4", "software"): 124.6,
    ("Llama2-70B", 1, "Q8_20%", "software"): 98.1,
    ("Llama2-70B", 1, "Q8_5%", "software"): 98.1,
    ("Llama2-70B", 1, "Q4", "deca"): 68.3,
    ("Llama2-70B", 1, "Q8_20%", "deca"): 50.5,
    ("Llama2-70B", 1, "Q8_5%", "deca"): 40.7,
    ("Llama2-70B", 16, "Q16", "software"): 211.2,
    ("Llama2-70B", 16, "Q4", "software"): 139.1,
    ("Llama2-70B", 16, "Q8_20%", "software"): 116.2,
    ("Llama2-70B", 16, "Q8_5%", "software"): 115.8,
    ("Llama2-70B", 16, "Q4", "deca"): 82.3,
    ("Llama2-70B", 16, "Q8_20%", "deca"): 66.5,
    ("Llama2-70B", 16, "Q8_5%", "deca"): 56.8,
    ("OPT-66B", 1, "Q16", "software"): 178.5,
    ("OPT-66B", 1, "Q4", "software"): 116.9,
    ("OPT-66B", 1, "Q8_20%", "software"): 91.2,
    ("OPT-66B", 1, "Q8_5%", "software"): 91.0,
    ("OPT-66B", 1, "Q4", "deca"): 60.8,
    ("OPT-66B", 1, "Q8_20%", "deca"): 45.0,
    ("OPT-66B", 1, "Q8_5%", "deca"): 35.6,
    ("OPT-66B", 16, "Q16", "software"): 203.9,
    ("OPT-66B", 16, "Q4", "software"): 132.3,
    ("OPT-66B", 16, "Q8_20%", "software"): 111.4,
    ("OPT-66B", 16, "Q8_5%", "software"): 110.8,
    ("OPT-66B", 16, "Q4", "deca"): 81.8,
    ("OPT-66B", 16, "Q8_20%", "deca"): 64.3,
    ("OPT-66B", 16, "Q8_5%", "deca"): 55.5,
}

# Headline claims used by the qualitative test suite.
HEADLINE_MAX_DECA_OVER_SW_HBM = 4.0  # "speedups reach 4.0x" (Figure 13)
HEADLINE_MAX_DECA_OVER_SW_DDR = 1.7  # "speedups reach 1.7x" (Figure 12)
HEADLINE_LLM_SPEEDUP_RANGE = (1.6, 2.6)  # DECA over SW (Table 4)
HEADLINE_LLM_VS_UNCOMPRESSED = (2.5, 5.0)  # DECA over BF16 (Table 4)
HEADLINE_Q8_5_OPTIMAL_OVER_OBSERVED = 4.94  # Section 3.3, HBM
DSE_BEST_DESIGN = (32, 8)  # Section 9.2
DSE_BEST_OVER_UNDERPROVISIONED = 2.0  # "DECA-best is 2x faster"
DSE_OVERPROVISIONED_GAIN_MAX = 0.03  # "less than 3% faster"
AREA_TOTAL_MM2 = 2.51
AREA_FRACTIONS = {"buffering": 0.55, "lut_array": 0.22, "logic": 0.23}
AREA_DIE_OVERHEAD_MAX = 0.002  # "less than 0.2%"
