"""Figure 13: compressed-GeMM speedups on the HBM machine (N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import Table
from repro.experiments.speedups import SchemeSpeedup, sweep_speedups
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class Figure13Result:
    """Per-scheme speedups over uncompressed BF16 (HBM)."""

    speedups: List[SchemeSpeedup]

    def format_table(self) -> str:
        table = Table(
            "Figure 13 (HBM, N=1): speedup vs uncompressed BF16",
            ["scheme", "software", "DECA", "optimal", "DECA/SW"],
        )
        for row in self.speedups:
            table.add_row(
                row.scheme.name,
                round(row.software, 2),
                round(row.deca, 2),
                round(row.optimal, 2),
                round(row.deca_over_software, 2),
            )
        return table.render()

    @property
    def max_deca_over_software(self) -> float:
        """The paper's headline: HBM speedups reach ~4x."""
        return max(row.deca_over_software for row in self.speedups)


def run(batch_rows: int = 1, jobs: int = 1) -> Figure13Result:
    """Regenerate Figure 13 (``jobs > 1`` fans out across workers)."""
    return Figure13Result(
        sweep_speedups(hbm_system(), batch_rows=batch_rows, jobs=jobs)
    )
