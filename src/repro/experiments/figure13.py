"""Figure 13: compressed-GeMM speedups on the HBM machine (N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import Table
from repro.experiments.speedups import (
    SchemeSpeedup,
    speedup_spec,
)
from repro.experiments.sweepspec import SweepSpec, register_scenario
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class Figure13Result:
    """Per-scheme speedups over uncompressed BF16 (HBM)."""

    speedups: List[SchemeSpeedup]

    def format_table(self) -> str:
        table = Table(
            "Figure 13 (HBM, N=1): speedup vs uncompressed BF16",
            ["scheme", "software", "DECA", "optimal", "DECA/SW"],
        )
        for row in self.speedups:
            table.add_row(
                row.scheme.name,
                round(row.software, 2),
                round(row.deca, 2),
                round(row.optimal, 2),
                round(row.deca_over_software, 2),
            )
        return table.render()

    @property
    def max_deca_over_software(self) -> float:
        """The paper's headline: HBM speedups reach ~4x."""
        return max(row.deca_over_software for row in self.speedups)


def sweep_spec(batch_rows: int = 1) -> SweepSpec:
    """Figure 13's per-scheme sweep as a declarative spec (HBM)."""
    return speedup_spec(
        hbm_system(),
        batch_rows=batch_rows,
        name="figure13",
        title="Figure 13 (HBM, N=1): speedup vs uncompressed BF16",
        reduce=Figure13Result,
        format_result=lambda result: result.format_table(),
    )


def run(batch_rows: int = 1, jobs: int = 1) -> Figure13Result:
    """Regenerate Figure 13 (``jobs > 1`` streams across workers)."""
    return sweep_spec(batch_rows=batch_rows).run(jobs=jobs)


register_scenario(
    "figure13",
    "compressed-GeMM speedups on the HBM machine (N=1)",
    sweep_spec,
)
