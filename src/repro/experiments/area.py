"""Section 8 area estimate: 56 DECA PEs in ~2.51 mm^2 (<0.2% of the die)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.deca.area import AreaBreakdown, deca_area
from repro.experiments.paper_reference import (
    AREA_DIE_OVERHEAD_MAX,
    AREA_FRACTIONS,
    AREA_TOTAL_MM2,
)
from repro.experiments.report import Table


@dataclass(frozen=True)
class AreaResult:
    """The reproduced breakdown next to the paper's headline numbers."""

    breakdown: AreaBreakdown

    def format_table(self) -> str:
        table = Table(
            "Section 8: DECA area (56 PEs, W=32, L=8, 7 nm)",
            ["structure", "mm^2", "fraction", "paper fraction"],
        )
        fractions = self.breakdown.fractions()
        table.add_row(
            "Loaders/queues/TOut",
            round(self.breakdown.buffering, 3),
            f"{fractions['buffering']:.0%}",
            f"{AREA_FRACTIONS['buffering']:.0%}",
        )
        table.add_row(
            "LUT array",
            round(self.breakdown.lut_array, 3),
            f"{fractions['lut_array']:.0%}",
            f"{AREA_FRACTIONS['lut_array']:.0%}",
        )
        table.add_row(
            "crossbar + datapath",
            round(self.breakdown.crossbar + self.breakdown.datapath, 3),
            f"{fractions['logic']:.0%}",
            f"{AREA_FRACTIONS['logic']:.0%}",
        )
        note = (
            f"total {self.breakdown.total:.2f} mm^2 (paper {AREA_TOTAL_MM2}) |"
            f" die overhead {self.breakdown.die_overhead():.3%} "
            f"(paper < {AREA_DIE_OVERHEAD_MAX:.1%})"
        )
        return table.render() + "\n" + note


def run() -> AreaResult:
    """Regenerate the Section 8 area estimate."""
    return AreaResult(deca_area())
