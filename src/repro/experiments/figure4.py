"""Figure 4: the 3-D Roof-Surface plot and the R-L / R-S / Real table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.roofline import Roofline
from repro.core.roofsurface import RoofSurface, RoofSurfacePoint
from repro.core.schemes import CompressionScheme, PAPER_SCHEMES
from repro.experiments.paper_reference import FIGURE4B_TFLOPS
from repro.experiments.report import Table
from repro.kernels.libxsmm import software_aixv, software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem, hbm_system


@dataclass(frozen=True)
class Figure4Result:
    """Surface mesh, model points, and the 4b comparison rows."""

    batch_rows: int
    surface: Tuple[np.ndarray, np.ndarray, np.ndarray]
    points: List[RoofSurfacePoint]
    comparison: Dict[str, Tuple[float, float, float]]  # R-L, R-S, real

    def format_table(self) -> str:
        table = Table(
            f"Figure 4b (HBM, N={self.batch_rows}): optimal TFLOPS per model"
            " vs simulated 'real' (paper values in parentheses)",
            ["scheme", "R-L", "R-S", "real", "paper R-L", "paper R-S",
             "paper real"],
        )
        for name, (rl, rs, real) in self.comparison.items():
            paper = FIGURE4B_TFLOPS.get(name, (float("nan"),) * 3)
            table.add_row(
                name, round(rl, 1), round(rs, 1), round(real, 1),
                paper[0], paper[1], paper[2],
            )
        return table.render()


def scheme_signature(scheme: CompressionScheme) -> Tuple[float, float]:
    """(AI_XM, AI_XV) of a scheme under software decompression."""
    return scheme.aixm(), software_aixv(scheme)


def run(
    system: SimSystem = None, batch_rows: int = 4
) -> Figure4Result:
    """Regenerate Figure 4 for the HBM machine."""
    system = system if system is not None else hbm_system()
    surface_model = RoofSurface(system.machine, batch_rows)
    roofline = Roofline(system.machine, batch_rows)
    points: List[RoofSurfacePoint] = []
    comparison: Dict[str, Tuple[float, float, float]] = {}
    max_aixm = max(s.aixm() for s in PAPER_SCHEMES) * 1.3
    max_aixv = 0.0
    for scheme in PAPER_SCHEMES:
        aixm, aixv = scheme_signature(scheme)
        finite_aixv = aixv if np.isfinite(aixv) else 1.0
        max_aixv = max(max_aixv, finite_aixv)
        point = surface_model.evaluate(scheme.name, aixm, finite_aixv)
        points.append(point)
        rl = roofline.attainable_flops(scheme.traditional_ai(batch_rows))
        sim = simulate_tile_stream(
            system, software_kernel_timing(system, scheme)
        )
        comparison[scheme.name] = (
            rl / 1e12,
            point.flops / 1e12,
            sim.flops(batch_rows) / 1e12,
        )
    surface = surface_model.surface_grid(max_aixm, max_aixv * 1.3)
    return Figure4Result(batch_rows, surface, points, comparison)
