"""Figure 3: traditional 2-D rooflines with observed vs optimal points."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.roofline import Roofline, RooflinePoint
from repro.core.schemes import (
    CompressionScheme,
    PAPER_SCHEMES,
    UNCOMPRESSED,
)
from repro.experiments.report import Table
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem, ddr_system, hbm_system


@dataclass(frozen=True)
class Figure3Result:
    """One roofline plot: the curve plus observed/optimal scheme points."""

    memory: str
    batch_rows: int
    curve: List[Tuple[float, float]]  # (AI, attainable FLOPS)
    points: List[RooflinePoint]

    def format_table(self) -> str:
        table = Table(
            f"Figure 3 ({self.memory}, N={self.batch_rows}): observed vs "
            "optimal TFLOPS on the traditional roofline",
            ["scheme", "AI (FLOP/B)", "observed", "optimal", "efficiency"],
        )
        for point in self.points:
            table.add_row(
                point.label,
                round(point.arithmetic_intensity, 2),
                round(point.observed_flops / 1e12, 2),
                round(point.optimal_flops / 1e12, 2),
                round(point.efficiency, 2),
            )
        return table.render()


def _observed_flops(
    system: SimSystem, scheme: CompressionScheme, batch_rows: int
) -> float:
    if scheme.name == UNCOMPRESSED.name:
        timing = uncompressed_kernel_timing(system)
    else:
        timing = software_kernel_timing(system, scheme)
    result = simulate_tile_stream(system, timing)
    return result.flops(batch_rows)


def run_one(system: SimSystem, memory: str, batch_rows: int = 4) -> Figure3Result:
    """One roofline (DDR or HBM) with the software-decompression points."""
    roofline = Roofline(system.machine, batch_rows)
    curve = roofline.series(list(roofline.default_intensity_grid()))
    schemes = (UNCOMPRESSED,) + PAPER_SCHEMES
    points = [
        roofline.scheme_point(s, _observed_flops(system, s, batch_rows))
        for s in schemes
    ]
    return Figure3Result(memory, batch_rows, curve, points)


def run(batch_rows: int = 4) -> Tuple[Figure3Result, Figure3Result]:
    """Both panels of Figure 3: (DDR, HBM)."""
    return (
        run_one(ddr_system(), "DDR", batch_rows),
        run_one(hbm_system(), "HBM", batch_rows),
    )
