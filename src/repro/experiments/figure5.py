"""Figure 5: Bounding Region Diagrams for the HBM and DDR machines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.bord import Bord, BordPoint
from repro.core.roofsurface import BoundingFactor
from repro.core.schemes import PAPER_SCHEMES
from repro.experiments.figure4 import scheme_signature
from repro.experiments.report import Table
from repro.sim.system import SimSystem, ddr_system, hbm_system


@dataclass(frozen=True)
class Figure5Result:
    """One BORD: the placed kernels plus region-area fractions."""

    memory: str
    points: List[BordPoint]
    region_fractions: Dict[BoundingFactor, float]
    ascii_plot: str

    def format_table(self) -> str:
        table = Table(
            f"Figure 5 ({self.memory}): BORD classification of the "
            "software-decompressed kernels",
            ["scheme", "AI_XM", "AI_XV", "bound"],
        )
        for point in self.points:
            table.add_row(
                point.label,
                round(point.aixm, 5),
                round(point.aixv, 5),
                point.bound.value,
            )
        regions = ", ".join(
            f"{factor.value}={fraction:.0%}"
            for factor, fraction in self.region_fractions.items()
        )
        return table.render() + f"\nregion areas: {regions}\n{self.ascii_plot}"

    def vec_bound_names(self) -> List[str]:
        """Schemes the diagram classifies as VEC-bound."""
        return [
            p.label for p in self.points if p.bound is BoundingFactor.VECTOR
        ]


_PLOT_AIXM_MAX = 0.012
_PLOT_AIXV_MAX = 0.012


def run_one(system: SimSystem, memory: str) -> Figure5Result:
    """One BORD panel with the software kernel signatures."""
    bord = Bord(system.machine)
    signatures = []
    for scheme in PAPER_SCHEMES:
        aixm, aixv = scheme_signature(scheme)
        signatures.append((scheme.name, aixm, aixv))
    points = bord.place_all(signatures)
    fractions = bord.region_fractions(_PLOT_AIXM_MAX, _PLOT_AIXV_MAX)
    plot = bord.render_ascii(points, _PLOT_AIXM_MAX, _PLOT_AIXV_MAX)
    return Figure5Result(memory, points, fractions, plot)


def run() -> tuple:
    """Both panels: (HBM, DDR) like Figures 5a and 5b."""
    return run_one(hbm_system(), "HBM"), run_one(ddr_system(), "DDR")
