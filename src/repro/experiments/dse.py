"""The (W, L) design-space exploration as a registered sweep scenario.

:func:`repro.core.dse.explore_deca_designs` deliberately lives below
the experiments layer and cannot import the sweep engine; it exposes
its candidate enumeration, per-candidate evaluator, and result
assembly as plain functions instead. This module is the upward
adapter: it declares the same exploration as a
:class:`repro.experiments.sweepspec.SweepSpec` — ``width`` × ``lut``
axes pruned by the ``L <= W`` rule, :func:`repro.core.dse.evaluate_design`
as the cell task, :func:`repro.core.dse.assemble_dse_result` as the
reducer — so the DSE streams, parallelizes, and emits through exactly
the machinery every other sweep uses. Outputs are bit-identical to the
core function (same cells, same order, same assembly).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.dse import (
    DseResult,
    assemble_dse_result,
    deca_machine_view,
    evaluate_design,
)
from repro.core.machine import MachineSpec
from repro.core.schemes import CompressionScheme, PAPER_SCHEMES
from repro.errors import ConfigurationError
from repro.experiments.sweepspec import (
    CellResult,
    SweepSpec,
    register_scenario,
)
from repro.sim.system import hbm_system


def _dse_rows(cell: CellResult) -> Tuple[Dict[str, Any], ...]:
    """One emission row per evaluated design point."""
    point = cell.value
    return ({
        "width": point.width,
        "lut_count": point.lut_count,
        "cost": point.cost,
        "saturates": point.saturates,
        "vec_bound_schemes": ",".join(point.vec_bound_schemes),
    },)


def _format_dse(result: DseResult) -> str:
    """The CLI's classic DSE listing (one line per candidate + best)."""
    lines = []
    for point in result.designs:
        status = "saturates" if point.saturates else (
            f"VEC-bound: {', '.join(point.vec_bound_schemes)}"
        )
        lines.append(
            f"W={point.width:3d} L={point.lut_count:3d} "
            f"cost={point.cost:8.0f}  {status}"
        )
    if result.best is not None:
        lines.append(f"best: W={result.best.width}, L={result.best.lut_count}")
    return "\n".join(lines)


def dse_spec(
    machine: Optional[MachineSpec] = None,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    widths: Sequence[int] = (8, 16, 32, 64),
    lut_counts: Sequence[int] = (4, 8, 16, 32, 64),
    vec_tolerance: float = 0.01,
) -> SweepSpec:
    """The (W, L) exploration as a declarative sweep spec."""
    if not schemes:
        raise ConfigurationError("the DSE needs at least one scheme")
    if machine is None:
        machine = hbm_system().machine
    deca_machine = deca_machine_view(machine)
    scheme_tuple = tuple(schemes)

    def make_cell(coords: Dict[str, Any]):
        return (
            deca_machine, coords["width"], coords["lut_count"],
            scheme_tuple, vec_tolerance,
        )

    return SweepSpec(
        name="dse",
        title="DECA (W, L) design-space exploration",
        axes={"width": tuple(widths), "lut_count": tuple(lut_counts)},
        # More big LUTs than output lanes is never useful: Lq >= W
        # already guarantees zero bubbles at L = W.
        keep=lambda coords: coords["lut_count"] <= coords["width"],
        task=evaluate_design,
        make_cell=make_cell,
        reduce=assemble_dse_result,
        rows=_dse_rows,
        format_result=_format_dse,
    )


def run_dse(
    machine: Optional[MachineSpec] = None,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    widths: Sequence[int] = (8, 16, 32, 64),
    lut_counts: Sequence[int] = (4, 8, 16, 32, 64),
    vec_tolerance: float = 0.01,
    jobs: Optional[int] = 1,
) -> DseResult:
    """Run the exploration through the sweep engine (the CLI's path).

    Bit-identical to ``explore_deca_designs(machine, schemes, ...)``;
    ``jobs > 1`` streams the candidates across forked workers.
    """
    return dse_spec(
        machine, schemes=schemes, widths=widths, lut_counts=lut_counts,
        vec_tolerance=vec_tolerance,
    ).run(jobs=jobs)


register_scenario(
    "dse",
    "DECA (W, L) design-space exploration on the HBM machine",
    dse_spec,
)
