"""Figure 16 + Section 9.2: BORD-driven DECA design-space exploration.

Regenerates the BORDs for the no-DECA machine and three DECA sizings, and
simulates the Section 9.2 validation: DECA-best is ~2x faster than the
underprovisioned design while the overprovisioned one gains <3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.bord import Bord, BordPoint
from repro.core.dse import (
    DseResult,
    deca_machine_view,
    explore_deca_designs,
    scheme_deca_signature,
)
from repro.core.schemes import PAPER_SCHEMES
from repro.deca.config import DecaConfig
from repro.deca.integration import deca_kernel_timing
from repro.deca.timing import deca_dec_cycles
from repro.experiments.figure4 import scheme_signature
from repro.experiments.report import Table
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import hbm_system

DESIGNS: Tuple[Tuple[int, int], ...] = ((8, 4), (32, 8), (64, 64))


@dataclass(frozen=True)
class Figure16Result:
    """BORD points per design plus the simulated §9.2 speedup ratios."""

    no_deca_points: List[BordPoint]
    design_points: Dict[Tuple[int, int], List[BordPoint]]
    dse: DseResult
    best_over_under: float
    over_over_best: float

    def format_table(self) -> str:
        table = Table(
            "Figure 16 (HBM): bounding factor per scheme and DECA design",
            ["scheme", "no DECA"] + [f"W={w},L={l}" for w, l in DESIGNS],
        )
        for i, point in enumerate(self.no_deca_points):
            row = [point.label, point.bound.value]
            for design in DESIGNS:
                row.append(self.design_points[design][i].bound.value)
            table.add_row(*row)
        best = self.dse.best
        note = (
            f"DSE best design: W={best.width}, L={best.lut_count} | "
            f"best over underprovisioned: {self.best_over_under:.2f}x | "
            f"overprovisioned gain over best: {self.over_over_best - 1:.1%}"
        )
        return table.render() + "\n" + note


def _mean_speedup(system, config: DecaConfig) -> float:
    """Geometric-mean tile rate across the schemes for one design."""
    rates: List[float] = []
    for scheme in PAPER_SCHEMES:
        timing = deca_kernel_timing(
            system, scheme, config=config,
            dec_cycles=deca_dec_cycles(config, scheme),
        )
        sim = simulate_tile_stream(system, timing)
        rates.append(sim.tiles_per_second)
    return float(np.exp(np.mean(np.log(rates))))


def run() -> Figure16Result:
    """Regenerate Figure 16 and the Section 9.2 validation ratios."""
    system = hbm_system()
    no_deca_bord = Bord(system.machine)
    no_deca_points = []
    for scheme in PAPER_SCHEMES:
        aixm, aixv = scheme_signature(scheme)
        no_deca_points.append(no_deca_bord.place(scheme.name, aixm, aixv))
    deca_bord = Bord(deca_machine_view(system.machine))
    design_points: Dict[Tuple[int, int], List[BordPoint]] = {}
    for width, luts in DESIGNS:
        points = []
        for scheme in PAPER_SCHEMES:
            aixm, aixv = scheme_deca_signature(scheme, width, luts)
            points.append(deca_bord.place(scheme.name, aixm, aixv))
        design_points[(width, luts)] = points
    dse = explore_deca_designs(system.machine, PAPER_SCHEMES)
    under = _mean_speedup(system, DecaConfig(width=8, lut_count=4))
    best = _mean_speedup(system, DecaConfig(width=32, lut_count=8))
    over = _mean_speedup(system, DecaConfig(width=64, lut_count=64))
    return Figure16Result(
        no_deca_points=no_deca_points,
        design_points=design_points,
        dse=dse,
        best_over_under=best / under,
        over_over_best=over / best,
    )
