"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning a structured result
with a ``format_table()`` method; the benchmark suite under
``benchmarks/`` invokes these and prints the regenerated rows/series next
to the paper's reported values (``paper_reference``).

Sweep-shaped harnesses additionally declare themselves as
:class:`repro.experiments.sweepspec.SweepSpec` scenarios (named axes →
cell grid, a picklable per-cell task, a reducer) and register in the
scenario registry — ``repro experiments --list`` enumerates them, and
any registered name can be run, streamed, and emitted incrementally
through the shared engine. Importing this package imports every
registering module, so the registry is complete after
``import repro.experiments``.
"""

from repro.experiments import (
    batch_sweep,
    composite,
    dse,
    grid,
    parallel,
    sensitivity,
    speedups,
    sweepspec,
    validation,
    figure3,
    figure4,
    figure5,
    figure6,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table1,
    table3,
    table4,
    area,
)
from repro.experiments.report import Table

__all__ = [
    "batch_sweep",
    "composite",
    "dse",
    "grid",
    "parallel",
    "sensitivity",
    "speedups",
    "sweepspec",
    "validation",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "table1",
    "table3",
    "table4",
    "area",
    "Table",
]
