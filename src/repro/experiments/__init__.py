"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning a structured result
with a ``format_table()`` method; the benchmark suite under
``benchmarks/`` invokes these and prints the regenerated rows/series next
to the paper's reported values (``paper_reference``).
"""

from repro.experiments import (
    batch_sweep,
    parallel,
    sensitivity,
    validation,
    figure3,
    figure4,
    figure5,
    figure6,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    table1,
    table3,
    table4,
    area,
)
from repro.experiments.report import Table

__all__ = [
    "batch_sweep",
    "parallel",
    "sensitivity",
    "validation",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "table1",
    "table3",
    "table4",
    "area",
    "Table",
]
