"""Grid sweeps over schemes, systems, and engines, with CSV export.

Library tooling for downstream studies: run the simulator across a
cartesian grid of configurations and collect flat records suitable for
spreadsheets or further analysis — the batch counterpart of the
one-figure experiment harnesses.

The grid is declared as a :class:`repro.experiments.sweepspec.SweepSpec`
(:func:`grid_spec`) with three named axes — ``system``, ``scheme``,
``engine`` — and is registered as the ``grid`` scenario. ``run_grid``
is the buffered entry point over that spec; ``grid_spec(...).stream()``
yields the same records incrementally as workers finish. ``jobs=1``
(the default) is the bit-identical serial path.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schemes import CompressionScheme, PAPER_SCHEMES
from repro.deca.config import DecaConfig
from repro.deca.integration import deca_kernel_timing
from repro.errors import ConfigurationError
from repro.kernels.libxsmm import software_kernel_timing
from repro.experiments.sweepspec import (
    SweepSpec,
    batchable,
    register_scenario,
)
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem, ddr_system, hbm_system


@dataclass(frozen=True)
class GridRecord:
    """One simulated configuration's flat result row."""

    system: str
    scheme: str
    engine: str
    interval_cycles: float
    tiles_per_second: float
    tflops_n1: float
    mem_util: float
    tmul_util: float
    dec_util: float


_FIELDS = (
    "system", "scheme", "engine", "interval_cycles", "tiles_per_second",
    "tflops_n1", "mem_util", "tmul_util", "dec_util",
)

#: One grid cell: everything a worker needs to simulate it.
_GridCell = Tuple[
    SimSystem, CompressionScheme, str, Optional[DecaConfig], bool, int
]


def _simulate_cell(cell: _GridCell) -> GridRecord:
    """Simulate one (system, scheme, engine) cell into a flat record."""
    system, scheme, engine, deca_config, use_cache, tiles = cell
    if engine == "software":
        timing = software_kernel_timing(system, scheme)
    else:
        timing = deca_kernel_timing(system, scheme, config=deca_config)
    result = simulate_tile_stream(
        system, timing, tiles=tiles, use_cache=use_cache
    )
    util = result.utilization
    return GridRecord(
        system=system.machine.name,
        scheme=scheme.name,
        engine=engine,
        interval_cycles=result.steady_interval_cycles,
        tiles_per_second=result.tiles_per_second,
        tflops_n1=result.flops(1) / 1e12,
        mem_util=util.memory,
        tmul_util=util.matrix,
        dec_util=util.decompress,
    )


def _grid_cell_sims(cell: _GridCell):
    """The cached simulations one grid cell will request, for batching.

    Mirrors :func:`_simulate_cell`'s timing construction exactly — the
    batched stack must land in the cache under the very key the task
    will look up. Uncached cells return no simulations (there is no
    cache entry to seed) and compute inside their task as before.
    """
    system, scheme, engine, deca_config, use_cache, tiles = cell
    if not use_cache:
        return ()
    if engine == "software":
        timing = software_kernel_timing(system, scheme)
    else:
        timing = deca_kernel_timing(system, scheme, config=deca_config)
    return ((system, timing, tiles),)


def _grid_rows(cell) -> "Tuple[Dict[str, object], ...]":
    """Emission rows for one grid cell: the flat record itself."""
    record = cell.value
    return ({f: getattr(record, f) for f in _FIELDS},)


def grid_spec(
    systems: Optional[Sequence[SimSystem]] = None,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    engines: Sequence[str] = ("software", "deca"),
    deca_config: Optional[DecaConfig] = None,
    use_cache: bool = True,
    tiles: int = 600,
) -> SweepSpec:
    """The (system, scheme, engine) grid as a declarative sweep spec."""
    for engine in engines:
        if engine not in ("software", "deca"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; use 'software' or 'deca'"
            )
    if systems is None:
        systems = (hbm_system(), ddr_system())

    def make_cell(coords: Dict[str, object]) -> _GridCell:
        return (
            coords["system"], coords["scheme"], coords["engine"],
            deca_config, use_cache, tiles,
        )

    return SweepSpec(
        name="grid",
        title="(system, scheme, engine) simulation grid",
        axes={
            "system": tuple(systems),
            "scheme": tuple(schemes),
            "engine": tuple(engines),
        },
        task=_simulate_cell,
        make_cell=make_cell,
        rows=_grid_rows,
        format_result=to_csv,
        batchable=batchable(_grid_cell_sims),
    )


def run_grid(
    systems: Optional[Sequence[SimSystem]] = None,
    schemes: Sequence[CompressionScheme] = PAPER_SCHEMES,
    engines: Sequence[str] = ("software", "deca"),
    deca_config: Optional[DecaConfig] = None,
    use_cache: bool = True,
    tiles: int = 600,
    jobs: Optional[int] = 1,
    batch: Optional[bool] = None,
) -> List[GridRecord]:
    """Simulate every (system, scheme, engine) combination.

    The buffered front door over :func:`grid_spec`. Each cell goes
    through the memoized tile-stream front door
    (:mod:`repro.sim.cache`): grids that overlap earlier sweeps — or
    repeat configurations across ``systems``/``schemes`` axes — cost one
    lookup per revisited cell. Pass ``use_cache=False`` to force fresh
    simulations.

    ``jobs`` selects the worker count: 1 (default) runs serial in
    process, ``N > 1`` streams the cells across ``N`` forked workers
    and merges their cache deltas as each cell lands (``None``/0 means
    one worker per CPU). ``batch`` overrides the cross-cell batching
    default (see :func:`repro.experiments.sweepspec.batching_enabled`).
    Records are bit-identical to the serial run either way.
    """
    return grid_spec(
        systems=systems, schemes=schemes, engines=engines,
        deca_config=deca_config, use_cache=use_cache, tiles=tiles,
    ).run(jobs=jobs, batch=batch)


def to_csv(records: Sequence[GridRecord]) -> str:
    """Serialize grid records as CSV text (header included)."""
    if not records:
        raise ConfigurationError("no records to serialize")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS, lineterminator="\n")
    writer.writeheader()
    for record in records:
        writer.writerow(
            {field: getattr(record, field) for field in _FIELDS}
        )
    return buffer.getvalue()


def save_csv(records: Sequence[GridRecord], path) -> None:
    """Write grid records to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(to_csv(records))


register_scenario(
    "grid",
    "full (system, scheme, engine) simulation grid as flat CSV records",
    grid_spec,
)
