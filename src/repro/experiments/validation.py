"""Programmatic validation of the paper's headline claims.

Runs the full reproduction and checks every headline statement of the
paper against the regenerated numbers, producing a pass/fail checklist —
the machine-readable counterpart of EXPERIMENTS.md. Exposed on the CLI as
``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.experiments import (
    area,
    figure6,
    figure12,
    figure13,
    figure14,
    figure16,
    figure17,
    table3,
    table4,
)
from repro.experiments.paper_reference import (
    TABLE3_UTILIZATION,
    TABLE4_LATENCY_MS,
)
from repro.experiments.report import Table


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim: the paper's statement and our measurement."""

    claim: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class ValidationReport:
    """All claim checks plus an overall verdict."""

    checks: Tuple[ClaimCheck, ...]

    @property
    def all_passed(self) -> bool:
        """Whether every claim was reproduced."""
        return all(check.passed for check in self.checks)

    def format_table(self) -> str:
        table = Table(
            "Validation: the paper's headline claims vs this reproduction",
            ["status", "claim", "measured"],
        )
        for check in self.checks:
            table.add_row(
                "PASS" if check.passed else "FAIL",
                check.claim,
                check.measured,
            )
        verdict = (
            f"{sum(c.passed for c in self.checks)}/{len(self.checks)} "
            "claims reproduced"
        )
        return table.render() + "\n" + verdict


def _check_figure13() -> ClaimCheck:
    result = figure13.run()
    ratio = result.max_deca_over_software
    return ClaimCheck(
        claim="DECA accelerates compressed GeMMs by up to 4x over "
              "software on HBM (abstract)",
        measured=f"max DECA/SW = {ratio:.2f}x",
        passed=3.3 <= ratio <= 4.8,
    )


def _check_figure12() -> ClaimCheck:
    result = figure12.run()
    ratio = result.max_deca_over_software
    return ClaimCheck(
        claim="On DDR the speedups reach ~1.7x (Section 9.1)",
        measured=f"max DECA/SW = {ratio:.2f}x",
        passed=1.3 <= ratio <= 2.0,
    )


def _check_figure14() -> ClaimCheck:
    result = figure14.run(core_counts=(8, 16, 56))
    cores = result.deca_cores_matching_full_software()
    return ClaimCheck(
        claim="16 DECA-augmented cores beat 56 conventional cores "
              "(Section 9.1)",
        measured=f"{cores} DECA cores suffice",
        passed=cores <= 16,
    )


def _check_figure6() -> ClaimCheck:
    result = figure6.run()
    remaining = result.still_vec_bound()
    return ClaimCheck(
        claim="Even a 4x VOS increase leaves kernels VEC-bound "
              "(Section 4.2)",
        measured=f"still VEC-bound: {', '.join(remaining) or 'none'}",
        passed=len(remaining) >= 1,
    )


def _check_figure16() -> ClaimCheck:
    result = figure16.run()
    best = result.dse.best
    ok = (
        (best.width, best.lut_count) == (32, 8)
        and 1.5 <= result.best_over_under <= 2.5
        and result.over_over_best - 1 < 0.03
    )
    return ClaimCheck(
        claim="DSE picks {W=32, L=8}; ~2x over underprovisioned; "
              "overprovisioned gains <3% (Section 9.2)",
        measured=(
            f"best W={best.width},L={best.lut_count}; "
            f"{result.best_over_under:.2f}x over under; "
            f"+{result.over_over_best - 1:.1%} for over"
        ),
        passed=ok,
    )


def _check_figure17() -> ClaimCheck:
    result = figure17.run()
    gain = result.tepl_gain_at(0.05)
    return ClaimCheck(
        claim="TEPLs double performance at 5% density (Section 9.3)",
        measured=f"+TEPL / +TOut at 5% = {gain:.2f}x",
        passed=1.7 <= gain <= 2.6,
    )


def _check_table3() -> ClaimCheck:
    result = table3.run()
    worst = 0
    for key, paper in TABLE3_UTILIZATION.items():
        ours = result.reports[key].as_percentages()
        for column in ("MEM", "TMUL", "DEC"):
            worst = max(worst, abs(ours[column] - paper[column]))
    return ClaimCheck(
        claim="Component utilisations match Table 3",
        measured=f"worst cell difference: {worst} points",
        passed=worst <= 8,
    )


def _check_table4() -> ClaimCheck:
    result = table4.run()
    ratios = [
        result.speedup(model, batch, scheme)
        for model in ("Llama2-70B", "OPT-66B")
        for batch in (1, 16)
        for scheme in ("Q4", "Q8_20%", "Q8_5%")
    ]
    worst_cell = 0.0
    for key, paper in TABLE4_LATENCY_MS.items():
        ours = result.latencies[key]
        worst_cell = max(worst_cell, abs(ours - paper) / paper)
    return ClaimCheck(
        claim="DECA reduces next-token time by 1.6x-2.6x over software "
              "(abstract); latencies track Table 4",
        measured=(
            f"DECA/SW in [{min(ratios):.2f}, {max(ratios):.2f}]; worst "
            f"cell off by {worst_cell:.0%}"
        ),
        passed=min(ratios) >= 1.5 and max(ratios) <= 2.9 and worst_cell < 0.21,
    )


def _check_area() -> ClaimCheck:
    result = area.run()
    overhead = result.breakdown.die_overhead()
    return ClaimCheck(
        claim="56 DECA PEs cost ~2.51 mm^2, <0.2% of the die (Section 8)",
        measured=(
            f"{result.breakdown.total:.2f} mm^2, {overhead:.3%} of the die"
        ),
        passed=abs(result.breakdown.total - 2.51) < 0.05 and overhead < 0.002,
    )


_CHECKS: Tuple[Callable[[], ClaimCheck], ...] = (
    _check_figure13,
    _check_figure12,
    _check_figure14,
    _check_figure6,
    _check_figure16,
    _check_figure17,
    _check_table3,
    _check_table4,
    _check_area,
)


def run() -> ValidationReport:
    """Execute every claim check."""
    checks: List[ClaimCheck] = [check() for check in _CHECKS]
    return ValidationReport(tuple(checks))
