"""Table 4: Llama2-70B / OPT-66B next-token latency (milliseconds)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.schemes import UNCOMPRESSED, parse_scheme
from repro.experiments.paper_reference import TABLE4_LATENCY_MS
from repro.experiments.report import Table
from repro.llm.inference import EngineKind, next_token_latency
from repro.llm.models import llama2_70b, opt_66b
from repro.sim.system import hbm_system

SCHEMES = ("Q16", "Q4", "Q8_20%", "Q8_5%")
BATCHES = (1, 16)


@dataclass(frozen=True)
class Table4Result:
    """Latencies in ms keyed by (model, batch, scheme, engine)."""

    latencies: Dict[Tuple[str, int, str, str], float]

    def format_table(self) -> str:
        table = Table(
            "Table 4: next-token latency (ms), HBM, 128 input tokens "
            "(reproduced | paper)",
            ["model", "batch", "scheme", "SW", "DECA"],
        )
        for model in ("Llama2-70B", "OPT-66B"):
            for batch in BATCHES:
                for scheme in SCHEMES:
                    sw = self.latencies.get((model, batch, scheme, "software"))
                    dc = self.latencies.get((model, batch, scheme, "deca"))
                    paper_sw = TABLE4_LATENCY_MS.get(
                        (model, batch, scheme, "software")
                    )
                    paper_dc = TABLE4_LATENCY_MS.get(
                        (model, batch, scheme, "deca")
                    )
                    table.add_row(
                        model,
                        batch,
                        scheme,
                        f"{sw:.1f} | {paper_sw}" if sw else "-",
                        f"{dc:.1f} | {paper_dc}" if dc else "-",
                    )
        return table.render()

    def speedup(
        self, model: str, batch: int, scheme: str
    ) -> float:
        """DECA over software for one cell."""
        return (
            self.latencies[(model, batch, scheme, "software")]
            / self.latencies[(model, batch, scheme, "deca")]
        )


def run(input_tokens: int = 128) -> Table4Result:
    """Regenerate Table 4 on the HBM machine."""
    system = hbm_system()
    latencies: Dict[Tuple[str, int, str, str], float] = {}
    for model in (llama2_70b(), opt_66b()):
        for batch in BATCHES:
            for scheme_name in SCHEMES:
                if scheme_name == "Q16":
                    # The uncompressed baseline (simulated with enough HBM).
                    breakdown = next_token_latency(
                        model,
                        system,
                        UNCOMPRESSED,
                        EngineKind.UNCOMPRESSED,
                        batch=batch,
                        input_tokens=input_tokens,
                    )
                    latencies[(model.name, batch, "Q16", "software")] = (
                        breakdown.total_ms
                    )
                    continue
                scheme = parse_scheme(scheme_name)
                for engine, key in (
                    (EngineKind.SOFTWARE, "software"),
                    (EngineKind.DECA, "deca"),
                ):
                    breakdown = next_token_latency(
                        model,
                        system,
                        scheme,
                        engine,
                        batch=batch,
                        input_tokens=input_tokens,
                    )
                    latencies[(model.name, batch, scheme_name, key)] = (
                        breakdown.total_ms
                    )
    return Table4Result(latencies)
