"""Figure 17: the DECA integration-feature ablation (HBM, N=4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schemes import CompressionScheme
from repro.deca.integration import INTEGRATION_LADDER, deca_kernel_timing
from repro.experiments.report import Table
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import hbm_system

DENSITIES: Tuple[float, ...] = (1.0, 0.5, 0.3, 0.2, 0.1, 0.05)


@dataclass(frozen=True)
class Figure17Result:
    """Speedups over the base configuration per density and feature."""

    labels: Tuple[str, ...]
    speedups: Dict[float, List[float]]  # density -> one value per label

    def format_table(self) -> str:
        table = Table(
            "Figure 17 (HBM, N=4, Q8): speedup over the base DECA "
            "integration",
            ["density"] + list(self.labels),
        )
        for density in sorted(self.speedups, reverse=True):
            table.add_row(
                f"{density:.0%}",
                *[round(v, 2) for v in self.speedups[density]],
            )
        return table.render()

    def tepl_gain_at(self, density: float) -> float:
        """+TEPL speedup over +TOut Regs at a density (paper: ~2x at 5%)."""
        values = self.speedups[density]
        return values[-1] / values[-2]


def run(densities: Tuple[float, ...] = DENSITIES) -> Figure17Result:
    """Regenerate Figure 17 for Q8 at the paper's density ladder."""
    system = hbm_system()
    labels = tuple(option.label for option in INTEGRATION_LADDER)
    speedups: Dict[float, List[float]] = {}
    for density in densities:
        scheme = CompressionScheme("bf8", density)
        intervals = []
        for option in INTEGRATION_LADDER:
            timing = deca_kernel_timing(system, scheme, integration=option)
            sim = simulate_tile_stream(system, timing)
            intervals.append(sim.steady_interval_cycles)
        base = intervals[0]
        speedups[density] = [base / interval for interval in intervals]
    return Figure17Result(labels, speedups)
