"""Figure 14: average TFLOPS vs active core count (DDR, N=4).

The headline: a handful of DECA-augmented cores match or beat the full
56 conventional cores, freeing the rest for other work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.schemes import PAPER_SCHEMES
from repro.deca.integration import deca_kernel_timing
from repro.experiments.report import Table
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import ddr_system


@dataclass(frozen=True)
class Figure14Result:
    """Average TFLOPS across all schemes, by core count and engine."""

    batch_rows: int
    core_counts: Tuple[int, ...]
    software_tflops: Dict[int, float]
    deca_tflops: Dict[int, float]

    def format_table(self) -> str:
        table = Table(
            f"Figure 14 (DDR, N={self.batch_rows}): average TFLOPS across "
            "all compression schemes",
            ["cores", "software", "DECA"],
        )
        for cores in self.core_counts:
            table.add_row(
                cores,
                round(self.software_tflops[cores], 2),
                round(self.deca_tflops[cores], 2),
            )
        return table.render()

    def deca_cores_matching_full_software(self) -> int:
        """Smallest DECA core count beating 56 software cores."""
        target = self.software_tflops[max(self.core_counts)]
        for cores in self.core_counts:
            if self.deca_tflops[cores] >= target:
                return cores
        return max(self.core_counts)


def run(
    core_counts: Tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56),
    batch_rows: int = 4,
) -> Figure14Result:
    """Regenerate Figure 14."""
    software: Dict[int, float] = {}
    deca: Dict[int, float] = {}
    for cores in core_counts:
        system = ddr_system(cores)
        sw_values: List[float] = []
        deca_values: List[float] = []
        for scheme in PAPER_SCHEMES:
            sw = simulate_tile_stream(
                system, software_kernel_timing(system, scheme)
            )
            dc = simulate_tile_stream(system, deca_kernel_timing(system, scheme))
            sw_values.append(sw.flops(batch_rows) / 1e12)
            deca_values.append(dc.flops(batch_rows) / 1e12)
        software[cores] = float(np.mean(sw_values))
        deca[cores] = float(np.mean(deca_values))
    return Figure14Result(batch_rows, core_counts, software, deca)
