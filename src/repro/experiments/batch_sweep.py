"""Batch-size sweep: the paper's "we repeated this analysis for batch
sizes of up to N=16 and observed similar results" (Section 9.1).

Regenerates the Figure 13 comparison at several batch sizes and reports
how stable the DECA-over-software ratios are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.report import Table
from repro.experiments.speedups import SchemeSpeedup, sweep_speedups
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class BatchSweepResult:
    """Speedups per batch size (HBM machine)."""

    batches: Tuple[int, ...]
    speedups: Dict[int, List[SchemeSpeedup]]

    def format_table(self) -> str:
        table = Table(
            "Batch sweep (HBM): max DECA-over-software speedup per batch",
            ["batch", "max DECA/SW", "mean DECA/SW"],
        )
        for batch in self.batches:
            rows = self.speedups[batch]
            ratios = [r.deca_over_software for r in rows]
            table.add_row(
                batch,
                round(max(ratios), 2),
                round(sum(ratios) / len(ratios), 2),
            )
        return table.render()

    def max_ratio_spread(self) -> float:
        """Relative spread of the max DECA/SW ratio across batches."""
        maxima = [
            max(r.deca_over_software for r in self.speedups[b])
            for b in self.batches
        ]
        return (max(maxima) - min(maxima)) / max(maxima)


def _batch_task(task) -> List[SchemeSpeedup]:
    """One batch size's full scheme sweep (module-level for pickling)."""
    system, batch = task
    return sweep_speedups(system, batch_rows=batch)


def run(
    batches: Tuple[int, ...] = (1, 4, 16), jobs: Optional[int] = 1
) -> BatchSweepResult:
    """Regenerate the Figure 13 analysis at several batch sizes.

    The weight-tile stream is batch-independent (weights dominate the
    traffic); FLOPS scale with N but the *ratios* between engines stay
    nearly constant — the paper's "similar results".

    ``jobs > 1`` runs one batch size per worker (the per-batch sweeps
    are independent); results are bit-identical to the serial run.
    """
    system = hbm_system()
    per_batch = parallel_map(
        _batch_task, [(system, batch) for batch in batches], jobs=jobs
    )
    speedups: Dict[int, List[SchemeSpeedup]] = dict(zip(batches, per_batch))
    return BatchSweepResult(tuple(batches), speedups)
