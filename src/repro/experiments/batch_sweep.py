"""Batch-size sweep: the paper's "we repeated this analysis for batch
sizes of up to N=16 and observed similar results" (Section 9.1).

Regenerates the Figure 13 comparison at several batch sizes and reports
how stable the DECA-over-software ratios are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.report import Table
from repro.experiments.speedups import SchemeSpeedup, sweep_speedups
from repro.experiments.sweepspec import (
    CellResult,
    SweepSpec,
    register_scenario,
)
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class BatchSweepResult:
    """Speedups per batch size (HBM machine)."""

    batches: Tuple[int, ...]
    speedups: Dict[int, List[SchemeSpeedup]]

    def format_table(self) -> str:
        table = Table(
            "Batch sweep (HBM): max DECA-over-software speedup per batch",
            ["batch", "max DECA/SW", "mean DECA/SW"],
        )
        for batch in self.batches:
            rows = self.speedups[batch]
            ratios = [r.deca_over_software for r in rows]
            table.add_row(
                batch,
                round(max(ratios), 2),
                round(sum(ratios) / len(ratios), 2),
            )
        return table.render()

    def max_ratio_spread(self) -> float:
        """Relative spread of the max DECA/SW ratio across batches."""
        maxima = [
            max(r.deca_over_software for r in self.speedups[b])
            for b in self.batches
        ]
        return (max(maxima) - min(maxima)) / max(maxima)


def _batch_task(task) -> List[SchemeSpeedup]:
    """One batch size's full scheme sweep (module-level for pickling)."""
    system, batch = task
    return sweep_speedups(system, batch_rows=batch)


def _batch_rows(cell: CellResult) -> List[Dict[str, Any]]:
    """One emission row per (batch, scheme) pair."""
    batch = cell.coords["batch"]
    return [
        {
            "batch": batch,
            "scheme": speedup.scheme.name,
            "software": speedup.software,
            "deca": speedup.deca,
            "optimal": speedup.optimal,
            "deca_over_software": speedup.deca_over_software,
        }
        for speedup in cell.value
    ]


def sweep_spec(batches: Tuple[int, ...] = (1, 4, 16)) -> SweepSpec:
    """The batch-size sweep as a declarative spec (one cell per batch)."""
    system = hbm_system()
    batches = tuple(batches)

    def reduce(per_batch: List[List[SchemeSpeedup]]) -> BatchSweepResult:
        return BatchSweepResult(batches, dict(zip(batches, per_batch)))

    return SweepSpec(
        name="batch_sweep",
        title="Figure 13 comparison repeated at several batch sizes",
        axes={"batch": batches},
        task=_batch_task,
        make_cell=lambda coords: (system, coords["batch"]),
        reduce=reduce,
        rows=_batch_rows,
        format_result=lambda result: result.format_table(),
    )


def run(
    batches: Tuple[int, ...] = (1, 4, 16), jobs: Optional[int] = 1
) -> BatchSweepResult:
    """Regenerate the Figure 13 analysis at several batch sizes.

    The weight-tile stream is batch-independent (weights dominate the
    traffic); FLOPS scale with N but the *ratios* between engines stay
    nearly constant — the paper's "similar results".

    ``jobs > 1`` runs one batch size per worker (the per-batch sweeps
    are independent, and a worker's nested sweep degrades to serial
    inside it); results are bit-identical to the serial run.
    """
    return sweep_spec(batches).run(jobs=jobs)


register_scenario(
    "batch_sweep",
    "Figure 13 speedup stability across batch sizes (HBM)",
    sweep_spec,
)
