"""Figure 15: DECA vs conventionally scaled CPU vector resources (HBM, N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schemes import CompressionScheme, PAPER_SCHEMES
from repro.deca.integration import deca_kernel_timing
from repro.experiments.report import Table
from repro.experiments.speedups import baseline_result
from repro.kernels.avx import AvxVariant
from repro.kernels.libxsmm import software_kernel_timing
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import hbm_system


@dataclass(frozen=True)
class Figure15Row:
    """Speedups over uncompressed BF16 for one scheme."""

    scheme: CompressionScheme
    more_avx_units: float
    wider_avx_units: float
    deca: float


@dataclass(frozen=True)
class Figure15Result:
    """All schemes' speedups for the three alternatives."""

    rows: List[Figure15Row]

    def format_table(self) -> str:
        table = Table(
            "Figure 15 (HBM, N=1): DECA vs traditional vector scaling",
            ["scheme", "more AVX units", "wider AVX units", "DECA"],
        )
        for row in self.rows:
            table.add_row(
                row.scheme.name,
                round(row.more_avx_units, 2),
                round(row.wider_avx_units, 2),
                round(row.deca, 2),
            )
        return table.render()

    def deca_wins_everywhere(self) -> bool:
        """Whether DECA beats both alternatives on every scheme."""
        return all(
            row.deca >= max(row.more_avx_units, row.wider_avx_units)
            for row in self.rows
        )


def run() -> Figure15Result:
    """Regenerate Figure 15."""
    system = hbm_system()
    baseline = baseline_result(system)
    base_interval = baseline.steady_interval_cycles
    rows: List[Figure15Row] = []
    for scheme in PAPER_SCHEMES:
        variants: Dict[AvxVariant, float] = {}
        for variant in (AvxVariant.MORE_UNITS, AvxVariant.WIDER_UNITS):
            sim = simulate_tile_stream(
                system, software_kernel_timing(system, scheme, variant=variant)
            )
            variants[variant] = base_interval / sim.steady_interval_cycles
        deca = simulate_tile_stream(system, deca_kernel_timing(system, scheme))
        rows.append(
            Figure15Row(
                scheme=scheme,
                more_avx_units=variants[AvxVariant.MORE_UNITS],
                wider_avx_units=variants[AvxVariant.WIDER_UNITS],
                deca=base_interval / deca.steady_interval_cycles,
            )
        )
    return Figure15Result(rows)
