"""Figure 12: compressed-GeMM speedups on the DDR machine (N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import Table
from repro.experiments.speedups import (
    SchemeSpeedup,
    speedup_spec,
)
from repro.experiments.sweepspec import SweepSpec, register_scenario
from repro.sim.system import ddr_system


@dataclass(frozen=True)
class Figure12Result:
    """Per-scheme speedups over uncompressed BF16 (DDR)."""

    speedups: List[SchemeSpeedup]

    def format_table(self) -> str:
        table = Table(
            "Figure 12 (DDR, N=1): speedup vs uncompressed BF16",
            ["scheme", "software", "DECA", "optimal", "DECA/SW"],
        )
        for row in self.speedups:
            table.add_row(
                row.scheme.name,
                round(row.software, 2),
                round(row.deca, 2),
                round(row.optimal, 2),
                round(row.deca_over_software, 2),
            )
        return table.render()

    @property
    def max_deca_over_software(self) -> float:
        """The paper's headline: DDR speedups reach ~1.7x."""
        return max(row.deca_over_software for row in self.speedups)


def sweep_spec(batch_rows: int = 1) -> SweepSpec:
    """Figure 12's per-scheme sweep as a declarative spec (DDR)."""
    return speedup_spec(
        ddr_system(),
        batch_rows=batch_rows,
        name="figure12",
        title="Figure 12 (DDR, N=1): speedup vs uncompressed BF16",
        reduce=Figure12Result,
        format_result=lambda result: result.format_table(),
    )


def run(batch_rows: int = 1, jobs: int = 1) -> Figure12Result:
    """Regenerate Figure 12.

    ``jobs > 1`` streams the per-scheme cells across forked workers
    (see :mod:`repro.experiments.parallel`); results are bit-identical
    to the serial run.
    """
    return sweep_spec(batch_rows=batch_rows).run(jobs=jobs)


register_scenario(
    "figure12",
    "compressed-GeMM speedups on the DDR machine (N=1)",
    sweep_spec,
)
