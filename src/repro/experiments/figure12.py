"""Figure 12: compressed-GeMM speedups on the DDR machine (N=1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import Table
from repro.experiments.speedups import SchemeSpeedup, sweep_speedups
from repro.sim.system import ddr_system


@dataclass(frozen=True)
class Figure12Result:
    """Per-scheme speedups over uncompressed BF16 (DDR)."""

    speedups: List[SchemeSpeedup]

    def format_table(self) -> str:
        table = Table(
            "Figure 12 (DDR, N=1): speedup vs uncompressed BF16",
            ["scheme", "software", "DECA", "optimal", "DECA/SW"],
        )
        for row in self.speedups:
            table.add_row(
                row.scheme.name,
                round(row.software, 2),
                round(row.deca, 2),
                round(row.optimal, 2),
                round(row.deca_over_software, 2),
            )
        return table.render()

    @property
    def max_deca_over_software(self) -> float:
        """The paper's headline: DDR speedups reach ~1.7x."""
        return max(row.deca_over_software for row in self.speedups)


def run(batch_rows: int = 1, jobs: int = 1) -> Figure12Result:
    """Regenerate Figure 12.

    ``jobs > 1`` fans the per-scheme cells out across forked workers
    (see :mod:`repro.experiments.parallel`); results are bit-identical
    to the serial run.
    """
    return Figure12Result(
        sweep_speedups(ddr_system(), batch_rows=batch_rows, jobs=jobs)
    )
