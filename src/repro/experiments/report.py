"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass
class Table:
    """A simple monospaced table with a title."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [[str(c) for c in self.columns]]
        cells.extend([_fmt(v) for v in row] for row in self.rows)
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
