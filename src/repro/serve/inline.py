"""Inline (request-parameterized) sweep builders for the serve daemon.

A sweep request normally names a registered scenario; an *inline*
request instead carries a small JSON parameterization and the daemon
builds the spec itself::

    {"op": "sweep", "inline": {"kind": "speedups", "memory": "ddr",
                               "tiles": 600}}
    {"op": "sweep", "inline": {"kind": "synthetic", "cells": 8,
                               "cell_s": 0.25, "tag": "drain-test"}}

Each builder folds every non-axis parameter into the spec's *name*:
the canonical request key (:func:`repro.experiments.sweepspec.
spec_request_key`) hashes only the name and the axes, so anything that
changes the computed rows must land in one of the two — otherwise two
different requests would wrongly coalesce.

The ``synthetic`` kind exists for the daemon's own tests and
benchmarks: a sweep whose cells just sleep a requested duration, with
module-level (picklable) tasks so it runs in forked pool workers and in
subprocess daemons alike. It never touches the simulation cache, so a
synthetic request can never take the cache-hit fast path — its duration
is deterministic, which is exactly what drain/fault timing tests need.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.speedups import speedup_spec
from repro.experiments.sweepspec import SweepSpec, get_scenario

#: Hard bounds on synthetic-sweep parameters: the daemon executes
#: requests it did not author, so an inline request must not be able to
#: wedge a runner thread for minutes.
MAX_SYNTHETIC_CELLS = 256
MAX_SYNTHETIC_CELL_S = 5.0


def _synthetic_cell(payload: Any) -> Dict[str, Any]:
    """One synthetic cell: sleep the requested duration, report it."""
    index, cell_s = payload
    if cell_s > 0:
        time.sleep(cell_s)
    return {"cell": index, "slept_s": cell_s}


def _synthetic_rows(cell: Any):
    return (dict(cell.value),)


def synthetic_spec(
    cells: int = 4, cell_s: float = 0.0, tag: str = ""
) -> SweepSpec:
    """A deterministic-duration sweep of sleeping cells (test traffic)."""
    cells = int(cells)
    cell_s = float(cell_s)
    if not 1 <= cells <= MAX_SYNTHETIC_CELLS:
        raise ConfigurationError(
            f"synthetic sweep: cells must be 1..{MAX_SYNTHETIC_CELLS}, "
            f"got {cells}"
        )
    if not 0.0 <= cell_s <= MAX_SYNTHETIC_CELL_S:
        raise ConfigurationError(
            f"synthetic sweep: cell_s must be 0..{MAX_SYNTHETIC_CELL_S}, "
            f"got {cell_s}"
        )
    name = f"synthetic[c{cells},s{cell_s:.3f}"
    if tag:
        name += f",{tag}"
    name += "]"

    def make_cell(coords: Dict[str, Any]):
        return (coords["cell"], cell_s)

    return SweepSpec(
        name=name,
        title=f"synthetic sweep ({cells} cells × {cell_s:.3f}s)",
        axes={"cell": tuple(range(cells))},
        task=_synthetic_cell,
        make_cell=make_cell,
        rows=_synthetic_rows,
    )


def _inline_speedups(params: Mapping[str, Any]) -> SweepSpec:
    from repro.core.schemes import PAPER_SCHEMES
    from repro.sim.system import ddr_system, hbm_system

    memory = str(params.get("memory", "ddr")).lower()
    systems = {"ddr": ddr_system, "hbm": hbm_system}
    if memory not in systems:
        raise ConfigurationError(
            f"inline speedups: memory must be one of {sorted(systems)}, "
            f"got {memory!r}"
        )
    tiles = int(params.get("tiles", 600))
    if not 1 <= tiles <= 100_000:
        raise ConfigurationError(
            f"inline speedups: tiles must be 1..100000, got {tiles}"
        )
    scheme_names = params.get("schemes")
    schemes = PAPER_SCHEMES
    if scheme_names is not None:
        by_name = {scheme.name: scheme for scheme in PAPER_SCHEMES}
        unknown = [n for n in scheme_names if n not in by_name]
        if unknown:
            raise ConfigurationError(
                f"inline speedups: unknown scheme(s) {unknown}; "
                f"known: {sorted(by_name)}"
            )
        schemes = tuple(by_name[n] for n in scheme_names)
    return speedup_spec(
        systems[memory](),
        schemes=schemes,
        tiles=tiles,
        name=f"speedups[{memory},t{tiles}]",
        title=f"per-scheme speedups ({memory.upper()}, {tiles} tiles)",
    )


_INLINE_KINDS = {
    "speedups": _inline_speedups,
    "synthetic": lambda params: synthetic_spec(
        cells=params.get("cells", 4),
        cell_s=params.get("cell_s", 0.0),
        tag=str(params.get("tag", "")),
    ),
}


def build_request_spec(request: Mapping[str, Any]) -> SweepSpec:
    """The :class:`SweepSpec` a sweep request names or describes.

    ``{"scenario": name}`` builds the registered scenario's default
    spec; ``{"inline": {...}}`` dispatches on the inline ``kind``.
    Raises :class:`ConfigurationError` on anything malformed — the
    daemon turns that into a clean ``error`` control line.
    """
    scenario = request.get("scenario")
    inline = request.get("inline")
    if (scenario is None) == (inline is None):
        raise ConfigurationError(
            "sweep request must carry exactly one of 'scenario' or 'inline'"
        )
    if scenario is not None:
        return get_scenario(str(scenario)).build()
    if not isinstance(inline, Mapping):
        raise ConfigurationError(
            f"inline request must be an object, got {type(inline).__name__}"
        )
    kind = inline.get("kind")
    builder = _INLINE_KINDS.get(kind)
    if builder is None:
        raise ConfigurationError(
            f"unknown inline sweep kind {kind!r}; "
            f"known: {sorted(_INLINE_KINDS)}"
        )
    return builder(inline)
