"""Wire protocol of the ``repro serve`` daemon.

Transport: a local ``AF_UNIX`` stream socket carrying newline-delimited
JSON, one request per connection. The client sends exactly one request
object; the daemon answers with a stream of lines and closes the
connection:

* **control lines** are JSON objects carrying the reserved ``"serve"``
  key — an ``ack`` (request admitted, with its canonical request key
  and whether it coalesced onto a running sweep), then zero or more
  rows, then an ``end`` (row count + per-request cache stats), or an
  ``error`` at any point;
* **row lines** are the sweep's per-cell JSONL rows *verbatim* —
  byte-for-byte what :func:`repro.experiments.sweepspec.jsonl_line`
  writes into an ``--out results.jsonl`` file, in cell-index order.
  The emitter is the wire format: a client can tee the stream straight
  to disk and obtain exactly the file the CLI would have written, and
  "all coalesced subscribers saw identical output" is a plain string
  comparison.

Requests::

    {"op": "sweep", "scenario": "figure12", "priority": 0}
    {"op": "sweep", "inline": {"kind": "speedups", ...}, "deadline_s": 30}
    {"op": "cancel", "key": "<sha256>"}
    {"op": "status"}
    {"op": "ping"}

``priority`` orders the daemon's admission queue (lower runs first,
ties FIFO). ``deadline_s`` (optional, seconds from receipt) bounds the
request's lifetime: an expired queued sweep is dropped without touching
the pool, a running one stops within one streamed cell — either way the
subscriber receives a ``deadline_exceeded`` error line. ``cancel``
force-cancels the admitted sweep with that request key (the key every
``ack`` carries). Inline request shapes are defined by
:mod:`repro.serve.inline`.

Responses (control lines)::

    {"serve": "ack", "key": "<sha256>", "coalesced": false}
    {"serve": "end", "state": "finished", "rows": 12, "fast_path": false,
     "cache": {...}, "disk": {...} | null}
    {"serve": "cancelled", "rows": 3}          # terminal, mid-sweep
    {"serve": "cancelled", "key": ..., "found": true}   # cancel reply
    {"serve": "error", "error": "..."}
    {"serve": "pong"}
    {"serve": "status", ...}

A ``deadline_exceeded`` failure is an ``error`` line whose text starts
with ``deadline_exceeded:`` and which carries
``"state": "deadline_exceeded"``. The same stream, mapped onto
HTTP/SSE frames by :mod:`repro.serve.http`, serves web clients.

A sweep row that itself contained a ``"serve"`` key would collide with
the control namespace; such rows are escaped as
``{"serve": "row", "line": "<original line>"}`` (no current spec emits
one — the escape keeps the protocol total rather than merely likely).
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Iterator, Optional

#: Environment override for the default socket path.
SOCKET_ENV = "REPRO_SERVE_SOCKET"

#: Reserved top-level key distinguishing control lines from row lines.
CONTROL_KEY = "serve"

#: ``listen()`` backlog of the daemon socket.
LISTEN_BACKLOG = 64


def default_socket_path() -> str:
    """The socket path used when neither flag nor env names one."""
    override = os.environ.get(SOCKET_ENV)
    if override:
        return override
    runtime = os.environ.get("XDG_RUNTIME_DIR") or "/tmp"
    return os.path.join(runtime, f"repro-serve-{os.getuid()}.sock")


def control_line(kind: str, **fields: Any) -> str:
    """Serialize one control message (no trailing newline)."""
    payload: Dict[str, Any] = {CONTROL_KEY: kind}
    payload.update(fields)
    return json.dumps(payload, sort_keys=False)


def escape_row_line(line: str) -> str:
    """Escape a row line when (and only when) it would read as control.

    The escape only needs to be *total* (no row line may ever parse as
    a control line), not parse-driven: a line that does not even
    contain the quoted reserved key as a substring cannot possibly
    parse to an object carrying it, so the per-row ``json.loads`` is
    reserved for the rare candidate. A substring hit inside a nested
    string value still parses and passes through unescaped.
    """
    if f'"{CONTROL_KEY}"' not in line:
        return line
    try:
        parsed = json.loads(line)
    except ValueError:
        return line
    if isinstance(parsed, dict) and CONTROL_KEY in parsed:
        return control_line("row", line=line)
    return line


def parse_control(line: str) -> Optional[Dict[str, Any]]:
    """The control payload of ``line``, or ``None`` for a row line."""
    try:
        parsed = json.loads(line)
    except ValueError:
        return None
    if isinstance(parsed, dict) and CONTROL_KEY in parsed:
        return parsed
    return None


def unescape_row(control: Dict[str, Any]) -> str:
    """The original row line inside a ``row`` escape control message."""
    return control["line"]


class LineChannel:
    """Blocking newline-delimited text framing over one stream socket.

    Owns the socket: closing the channel closes the connection. Reads
    and writes are line-at-a-time through buffered file wrappers; every
    write flushes, so each row reaches the peer as it lands (the
    streaming contract of the sweep engine carried onto the wire).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = sock.makefile("w", encoding="utf-8", newline="\n")

    def send_line(self, line: str) -> None:
        self._writer.write(line)
        self._writer.write("\n")
        self._writer.flush()

    def recv_line(self) -> Optional[str]:
        """One line without its newline, or ``None`` at EOF."""
        line = self._reader.readline()
        if not line:
            return None
        return line.rstrip("\n")

    def lines(self) -> Iterator[str]:
        """Iterate lines until the peer closes the connection."""
        while True:
            line = self.recv_line()
            if line is None:
                return
            yield line

    def close(self) -> None:
        for closer in (self._writer, self._reader, self._sock):
            try:
                closer.close()
            except OSError:
                pass

    def __enter__(self) -> "LineChannel":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
