"""Sweep-as-a-service: the ``repro serve`` daemon and its client.

The serving layer turns the repo's one-shot sweep machinery into a
long-lived local service: one daemon owns the persistent forked pool
and the two-tier simulation cache, many clients stream sweep results
over a UNIX socket, and identical in-flight requests coalesce onto a
single compute. See :mod:`repro.serve.daemon` for the architecture,
:mod:`repro.serve.protocol` for the wire format, and ``docs/SERVING.md``
for the operator-facing walkthrough.
"""

from repro.serve.client import (
    ServeClient,
    ServeRequestError,
    ServeUnavailableError,
    connect,
)
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import default_socket_path

__all__ = [
    "ServeClient",
    "ServeDaemon",
    "ServeRequestError",
    "ServeUnavailableError",
    "connect",
    "default_socket_path",
]
