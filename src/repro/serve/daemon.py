"""The ``repro serve`` daemon: sweeps as a long-lived local service.

One process owns the warm serving state every CLI invocation otherwise
rebuilds from scratch — the persistent forked worker pool and the
two-tier simulation cache — and serves sweep requests over a local UNIX
socket (:mod:`repro.serve.protocol`). The request path is::

    connection → admission queue → coalescing table → shared pool
                                                    ↘ row fan-out

* **Admission**: each sweep request enters a priority queue (lower
  ``priority`` first, FIFO within a priority); ``max_active`` runner
  threads drain it, bounding how many sweeps contend for the ONE
  shared pool at a time.
* **Coalescing**: requests are keyed by their canonical request key
  (:func:`repro.experiments.sweepspec.spec_request_key` — scenario
  name + axes + result-schema fingerprint). A request whose key
  matches a queued or running sweep *attaches as a subscriber* instead
  of being admitted: every subscriber receives the complete
  index-sorted row stream (rows are buffered for late joiners), so N
  identical concurrent requests cost one compute.
* **Cache-hit fast path**: before touching the pool, a runner probes
  every simulation the sweep's cells will request (the spec's
  ``batchable`` rule enumerates them; the probe is counter-neutral).
  A fully-warm request streams straight out of the two-tier cache on
  the runner thread, ``jobs=1`` — the pool never sees it.
* **Lifecycle**: an admitted job moves ``queued → running →
  {finished, cancelled, deadline_exceeded, error}``. When the last
  subscriber hangs up the job is orphaned and the runner cancels it —
  closing the sweep stream rides the executor's early-exit path, so
  pool dispatch stops within one in-flight window and nobody burns the
  pool on rows no one will read. ``deadline_s`` requests expire in the
  queue without touching the pool, or stop within one streamed cell
  once running; ``{"op": "cancel", "key": ...}`` force-cancels by
  request key. Optional per-client token buckets rate-limit admission
  across both the socket and HTTP transports
  (:mod:`repro.serve.http`).
* **Fault degradation**: a killed pool worker is ridden out by the
  executor's worker-loss recovery (lost cells recompute in-parent,
  receipts de-duplicate), and a corrupt disk-cache entry reads as a miss and
  recomputes — in both cases the affected stream completes correctly
  and other clients' streams are never dropped.
* **Drain** (SIGTERM path): stop accepting, unlink the socket, let
  queued and in-flight sweeps finish (their subscribers get complete
  streams), flush the in-memory cache to the disk tier, release the
  owned pool. New connections after drain starts are refused — by a
  clean ``error`` line while the listener is mid-close, by a missing
  socket after.

The daemon owns the pool through
:func:`repro.experiments.parallel.claim_worker_pool`, which also
excludes it from the module's ambient atexit teardown (the fix that
rode along with this daemon: atexit used to race an owner's drain).
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import repro.experiments  # noqa: F401  (registers every sweep scenario)
from repro.errors import ConfigurationError, DeadlineExceededError
from repro.experiments.parallel import (
    claim_worker_pool,
    release_worker_pool,
    worker_pool_owned,
    worker_pool_pids,
    worker_pool_size,
)
from repro.experiments.remote import (
    executor_topology,
    shutdown_remote_workers,
)
from repro.experiments.sweepspec import (
    get_scenario,
    jsonl_line,
    spec_request_key,
)
from repro.serve.inline import build_request_spec
from repro.serve.protocol import (
    LISTEN_BACKLOG,
    LineChannel,
    control_line,
    default_socket_path,
    escape_row_line,
)
from repro.sim.cache import (
    flush_simulation_cache_to_disk,
    prefetch_simulation_keys,
    simulation_cache_contains,
    simulation_cache_dir,
    simulation_cache_disk,
    simulation_cache_stats,
)
from repro.sim.pipeline import tile_stream_key

#: How long a runner waits on the admission queue per poll; bounds how
#: quickly runners notice a drain, not request latency.
_ADMISSION_POLL_S = 0.25

#: Read timeout on a fresh connection's request line — a client that
#: connects and sends nothing must not pin a handler thread forever.
_REQUEST_READ_TIMEOUT_S = 30.0


class _EndOfStream:
    """Terminal fan-out item: carries the subscriber's ``end`` line."""

    __slots__ = ("line",)

    def __init__(self, line: str) -> None:
        self.line = line


class _SweepJob:
    """One admitted sweep, its subscriber fan-out, and its lifecycle.

    Rows are buffered for the job's whole lifetime (sweeps are
    thousands of rows at most), so a subscriber attaching at *any*
    point — even after the sweep finished but before the job leaves the
    coalescing table — replays the complete index-sorted stream. The
    publishing runner holds the job lock only to append/fan-out, never
    while computing.

    Lifecycle: ``queued → running → {finished, cancelled,
    deadline_exceeded, error}``. The job tracks its live subscriber
    count: when the *last* subscriber detaches from an unfinished job
    the job is marked orphaned, and the runner retires it with a
    ``cancelled`` terminal at its next between-cell check — nobody is
    left who will ever read the rows. A new subscriber attaching first
    (a coalescing near-miss) clears the orphan mark and the sweep keeps
    going. An explicit ``cancel`` verb sets a sticky force-cancel that
    no late attach can undo.
    """

    def __init__(
        self,
        key: str,
        spec: Any,
        priority: int,
        deadline: Optional[float] = None,
    ) -> None:
        self.key = key
        self.spec = spec
        self.priority = priority
        #: Absolute :func:`time.monotonic` expiry, fixed at admission by
        #: the first request; coalescing subscribers inherit it.
        self.deadline = deadline
        self.lock = threading.Lock()
        self.rows: List[str] = []
        self.subscribers: "List[Any]" = []
        self.finished = False
        self.terminal: Optional[str] = None
        self.state = "queued"
        self._orphaned = False
        self._force_cancelled = False

    def attach(self) -> "queue.Queue[Any]":
        """Subscribe: replay buffered rows, then receive live ones."""
        feed: "queue.Queue[Any]" = queue.Queue()
        with self.lock:
            for line in self.rows:
                feed.put(line)
            if self.finished:
                feed.put(_EndOfStream(self.terminal or ""))
            else:
                self.subscribers.append(feed)
                self._orphaned = False
        return feed

    def detach(self, feed: Any) -> None:
        """Drop one subscriber (client hung up).

        With other subscribers still attached the shared sweep keeps
        going; dropping the *last* one orphans the job, which the
        runner turns into a ``cancelled`` retirement.
        """
        with self.lock:
            try:
                self.subscribers.remove(feed)
            except ValueError:
                pass
            if not self.subscribers and not self.finished:
                self._orphaned = True

    def cancel(self) -> bool:
        """Force-cancel (the ``cancel`` verb); False once finished."""
        with self.lock:
            if self.finished:
                return False
            self._force_cancelled = True
            return True

    def stop_reason(self) -> Optional[str]:
        """Why the runner should stop now, or ``None`` to keep going.

        Checked between streamed cells: ``"cancelled"`` for a forced or
        orphaned job, ``"deadline_exceeded"`` past the deadline.
        """
        with self.lock:
            if self._force_cancelled:
                return "cancelled"
            if self._orphaned and not self.subscribers:
                return "cancelled"
        if (
            self.deadline is not None
            and time.monotonic() >= self.deadline
        ):
            return "deadline_exceeded"
        return None

    def subscriber_count(self) -> int:
        with self.lock:
            return len(self.subscribers)

    def publish(self, line: str) -> None:
        with self.lock:
            self.rows.append(line)
            for feed in self.subscribers:
                feed.put(line)

    def finish(self, terminal: str, state: str = "finished") -> None:
        with self.lock:
            self.finished = True
            self.terminal = terminal
            self.state = state
            for feed in self.subscribers:
                feed.put(_EndOfStream(terminal))
            self.subscribers.clear()


class _TokenBucket:
    """Per-client admission rate limiter (``rate`` tokens/s, capacity
    ``burst``); caller holds the daemon's bucket lock."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = time.monotonic()

    def allow(self) -> bool:
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ServeDaemon:
    """The sweep-serving daemon; embeddable (tests) or CLI-run.

    ``start()`` binds the socket and spins up the accept and runner
    threads; ``drain()`` performs the graceful shutdown. Both are safe
    to call exactly once each, from any thread.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        jobs: int = 2,
        max_active: int = 2,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        preload: Optional[List[str]] = None,
    ) -> None:
        if max_active < 1:
            raise ConfigurationError(
                f"max_active must be >= 1, got {max_active}"
            )
        if rate_limit is not None and rate_limit <= 0:
            raise ConfigurationError(
                f"rate_limit must be > 0 sweeps/s, got {rate_limit}"
            )
        self.socket_path = socket_path or default_socket_path()
        self.jobs = jobs
        self.max_active = max_active
        #: Per-client sweep-admission rate (sweeps/s; ``None`` = off)
        #: and bucket capacity. One bucket per client identity — the
        #: peer UID on the UNIX socket, the peer address over HTTP — so
        #: the limit covers both transports with the same accounting.
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (max(2.0, 2.0 * rate_limit) if rate_limit else 0.0)
        )
        self._buckets: Dict[str, _TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._admission: "queue.PriorityQueue[Any]" = queue.PriorityQueue()
        self._table: Dict[str, _SweepJob] = {}
        self._table_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._seq = 0
        self._requests = 0
        self._coalesced = 0
        self._fast_path = 0
        self._sweeps_computed = 0
        self._errors = 0
        self._cancelled = 0
        self._deadline_exceeded = 0
        self._rate_limited = 0
        self._active = 0
        self._draining = False
        self._drained = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._runner_threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: "set[threading.Thread]" = set()
        self._conn_lock = threading.Lock()
        self._started_monotonic = 0.0
        self._pool_width = 1
        #: Scenario names whose simulation keys are prefetched from the
        #: disk tier into the memory LRU at startup (the hot
        #: ``spec_request_key`` prefixes a restarted daemon should
        #: serve through the fast path without lazy disk loads).
        self.preload = tuple(preload or ())
        self._preload_warmed = 0
        self._preload_keys = 0
        self._preload_done = not self.preload
        self._preload_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Bind the socket, claim the pool, start accepting requests."""
        self._cleanup_stale_socket()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(self.socket_path)
        except OSError as error:
            listener.close()
            raise ConfigurationError(
                f"cannot bind serve socket {self.socket_path}: {error}"
            )
        listener.listen(LISTEN_BACKLOG)
        self._listener = listener
        self._pool_width = claim_worker_pool(self.jobs)
        self._started_monotonic = time.monotonic()
        for slot in range(self.max_active):
            thread = threading.Thread(
                target=self._runner, name=f"serve-runner-{slot}", daemon=True
            )
            thread.start()
            self._runner_threads.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        if self.preload and simulation_cache_disk() is not None:
            self._preload_thread = threading.Thread(
                target=self._preload_hot_scenarios,
                name="serve-preload",
                daemon=True,
            )
            self._preload_thread.start()

    def _preload_hot_scenarios(self) -> None:
        """Warm the memory LRU from disk for the configured scenarios.

        Runs in the background so startup latency is unaffected; each
        scenario's batchable rule enumerates the exact simulation keys
        its cells will look up (the same walk the fast-path probe
        does), and :func:`prefetch_simulation_keys` promotes whatever
        the disk tier holds — counter-neutrally, so the first real
        request's cache accounting is untouched. Unknown scenarios,
        specs without a batchable rule, and disk errors all degrade to
        a cold start, never a failed one. Stops within one entry when a
        drain begins.
        """
        keys: List[Any] = []
        seen: set = set()
        for name in self.preload:
            try:
                spec = get_scenario(name).build()
                rule = getattr(spec, "batchable", None)
                if rule is None:
                    continue
                for cell in spec.cells():
                    for system, timing, tiles in rule.sims(cell):
                        key = tile_stream_key(system, timing, tiles)
                        if key not in seen:
                            seen.add(key)
                            keys.append(key)
            except Exception:
                continue
        with self._stats_lock:
            self._preload_keys = len(keys)
        warmed = prefetch_simulation_keys(
            keys, should_stop=lambda: self._draining
        )
        with self._stats_lock:
            self._preload_warmed = warmed
            self._preload_done = True

    def _cleanup_stale_socket(self) -> None:
        """Unlink a dead predecessor's socket file; refuse a live one.

        A daemon killed with SIGKILL leaves its bound socket file
        behind; ``bind()`` would fail with ``EADDRINUSE`` even though
        nothing is listening. A connect probe tells the two apart:
        refused (or any immediate error) means stale.
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except OSError:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            return
        finally:
            probe.close()
        raise ConfigurationError(
            f"a daemon is already serving on {self.socket_path}"
        )

    def drain(self, timeout: Optional[float] = 60.0) -> None:
        """Graceful shutdown: finish admitted work, persist, tear down.

        Queued and running sweeps complete and their subscribers
        receive full streams; new sweep requests are refused from the
        moment drain starts. The in-memory cache is flushed to the disk
        tier (if one is configured) and the owned pool released.
        Idempotent; concurrent callers block until the first finishes.
        """
        with self._table_lock:
            if self._draining:
                self._drained.wait(timeout)
                return
            self._draining = True
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        # Stop sentinels sort after every real priority, so runners
        # finish all admitted sweeps before exiting.
        for _ in range(self.max_active):
            self._admission.put((float("inf"), self._next_seq(), None))
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._runner_threads:
            thread.join(self._remaining(deadline))
        with self._conn_lock:
            conn_threads = list(self._conn_threads)
        for thread in conn_threads:
            thread.join(self._remaining(deadline))
        flush_simulation_cache_to_disk()
        # Unconditionally symmetric with start()'s claim_worker_pool():
        # a width-1 claim forks no pool but is still a claim, and must
        # still be released (the leak this replaces skipped release
        # whenever the claimed width came back 1).
        release_worker_pool()
        # The SIGTERM drain must also close socket-worker connections
        # and reap loopback `repro worker` subprocesses — a daemon
        # dispatching to --hosts workers exits leaving none behind.
        shutdown_remote_workers()
        self._drained.set()

    @staticmethod
    def _remaining(deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def _next_seq(self) -> int:
        with self._stats_lock:
            self._seq += 1
            return self._seq

    # -- admission + coalescing ----------------------------------------

    def _check_rate(self, client_id: Optional[str]) -> None:
        """Charge one admission token; raise when the client is over."""
        if self.rate_limit is None:
            return
        name = client_id or "unknown"
        with self._buckets_lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = _TokenBucket(self.rate_limit, self.rate_burst)
                self._buckets[name] = bucket
            allowed = bucket.allow()
        if not allowed:
            with self._stats_lock:
                self._rate_limited += 1
            raise ConfigurationError(
                f"rate limited: client {name} exceeded "
                f"{self.rate_limit:g} sweeps/s "
                f"(burst {self.rate_burst:g}); retry later"
            )

    @staticmethod
    def _request_deadline(request: Dict[str, Any]) -> Optional[float]:
        """The absolute monotonic deadline a request asks for, if any."""
        deadline_s = request.get("deadline_s")
        if deadline_s is None:
            return None
        try:
            seconds = float(deadline_s)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"deadline_s must be a positive number, got {deadline_s!r}"
            )
        if seconds <= 0:
            raise ConfigurationError(
                f"deadline_s must be a positive number, got {deadline_s!r}"
            )
        return time.monotonic() + seconds

    def _admit_sweep(
        self, request: Dict[str, Any], client_id: Optional[str] = None
    ) -> Tuple[_SweepJob, Any, bool]:
        """Admit (or coalesce) one sweep request.

        Returns ``(job, subscriber_feed, coalesced)``. Lookup-or-create
        runs under the table lock, so two simultaneous identical
        requests can never both admit a compute — the loser of the race
        always finds the winner's job and attaches. A coalescing
        subscriber inherits the job's deadline (fixed by the first
        request); the per-client token bucket is charged before any
        spec is built.
        """
        self._check_rate(client_id)
        deadline = self._request_deadline(request)
        spec = build_request_spec(request)
        key = spec_request_key(spec)
        priority = int(request.get("priority", 0))
        with self._table_lock:
            if self._draining:
                raise ConfigurationError(
                    "daemon is draining and not accepting new work"
                )
            job = self._table.get(key)
            if job is not None:
                feed = job.attach()
                with self._stats_lock:
                    self._requests += 1
                    self._coalesced += 1
                return job, feed, True
            job = _SweepJob(
                key=key, spec=spec, priority=priority, deadline=deadline
            )
            feed = job.attach()
            self._table[key] = job
            self._admission.put((priority, self._next_seq(), job))
        with self._stats_lock:
            self._requests += 1
        return job, feed, False

    def cancel_sweep(self, key: str) -> bool:
        """Force-cancel the admitted sweep with ``key`` (the ``cancel``
        verb); True when a live job was found and marked."""
        with self._table_lock:
            job = self._table.get(key)
        if job is None:
            return False
        return job.cancel()

    # -- runners -------------------------------------------------------

    def _runner(self) -> None:
        while True:
            try:
                _, _, job = self._admission.get(timeout=_ADMISSION_POLL_S)
            except queue.Empty:
                continue
            if job is None:
                return
            self._run_job(job)

    def _fully_warm(self, spec: Any) -> bool:
        """Whether every simulation the sweep needs is already cached.

        Only specs with a ``batchable`` rule can enumerate their
        simulations up front; anything else always takes the pool path.
        The probe uses the pipeline's own key builder
        (:func:`repro.sim.pipeline.tile_stream_key`), so probed keys
        match what the cells will actually look up — ``extra`` slot
        included.
        """
        rule = getattr(spec, "batchable", None)
        if rule is None:
            return False
        try:
            cells = spec.cells()
        except Exception:
            return False
        probed = 0
        for cell in cells:
            for system, timing, tiles in rule.sims(cell):
                key = tile_stream_key(system, timing, tiles)
                if not simulation_cache_contains(key):
                    return False
                probed += 1
        return probed > 0

    def _retire_stopped(self, job: _SweepJob, reason: str, rows: int) -> None:
        """Retire a cancelled or deadline-expired job with its terminal."""
        if reason == "deadline_exceeded":
            with self._stats_lock:
                self._deadline_exceeded += 1
            job.finish(
                control_line(
                    "error",
                    error=(
                        "deadline_exceeded: sweep missed its deadline "
                        f"after {rows} row(s)"
                    ),
                    state="deadline_exceeded",
                    rows=rows,
                ),
                state="deadline_exceeded",
            )
        else:
            with self._stats_lock:
                self._cancelled += 1
            job.finish(
                control_line("cancelled", rows=rows), state="cancelled"
            )

    def _run_job(self, job: _SweepJob) -> None:
        with self._stats_lock:
            self._active += 1
        memory_before = simulation_cache_stats()
        disk = simulation_cache_disk()
        disk_before = disk.stats() if disk is not None else None
        rows_emitted = 0
        try:
            # A job may already be dead on arrival: every subscriber
            # hung up while it sat queued, it was cancelled by key, or
            # its deadline passed in the queue. Drop it here — the pool
            # is never touched.
            stopped = job.stop_reason()
            if stopped is not None:
                self._retire_stopped(job, stopped, rows_emitted)
                return
            job.state = "running"
            fast = self._fully_warm(job.spec)
            jobs = 1 if fast else self._pool_width
            stream = job.spec.stream(jobs=jobs, deadline=job.deadline)
            try:
                for cell in stream:
                    for row in job.spec.rows_for(cell):
                        job.publish(escape_row_line(jsonl_line(row)))
                        rows_emitted += 1
                    stopped = job.stop_reason()
                    if stopped is not None:
                        break
            except DeadlineExceededError:
                stopped = "deadline_exceeded"
            finally:
                # Breaking out (cancel/deadline) closes the underlying
                # stream_map generator: dispatch stops immediately and
                # the in-flight window drains, leaving the shared pool
                # quiescent for the next sweep.
                stream.close()
            if stopped is not None:
                self._retire_stopped(job, stopped, rows_emitted)
                return
            memory_delta = simulation_cache_stats().since(memory_before)
            disk_now = simulation_cache_disk()
            disk_delta = (
                disk_now.stats().since(disk_before)
                if disk_before is not None and disk_now is not None
                else None
            )
            with self._stats_lock:
                if fast:
                    self._fast_path += 1
                else:
                    self._sweeps_computed += 1
            job.finish(
                control_line(
                    "end",
                    state="finished",
                    rows=rows_emitted,
                    fast_path=fast,
                    cache={
                        "hits": memory_delta.hits,
                        "misses": memory_delta.misses,
                        "disk_hits": memory_delta.disk_hits,
                    },
                    disk=(
                        None
                        if disk_delta is None
                        else {
                            "hits": disk_delta.hits,
                            "misses": disk_delta.misses,
                            "errors": disk_delta.errors,
                            "stores": disk_delta.stores,
                        }
                    ),
                )
            )
        except Exception as error:
            with self._stats_lock:
                self._errors += 1
            job.finish(
                control_line(
                    "error",
                    error=f"{type(error).__name__}: {error}",
                    state="error",
                ),
                state="error",
            )
        finally:
            with self._table_lock:
                if self._table.get(job.key) is job:
                    del self._table[job.key]
            with self._stats_lock:
                self._active -= 1

    # -- connections ---------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: drain started
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="serve-conn",
                daemon=True,
            )
            # Handlers remove themselves on exit (under the same lock),
            # so this set never needs pruning here — the reassignment
            # prune this replaces raced drain()'s iteration.
            with self._conn_lock:
                self._conn_threads.add(thread)
            thread.start()

    @staticmethod
    def _peer_client_id(conn: socket.socket) -> str:
        """The UNIX peer's identity for rate-limit accounting (its UID)."""
        try:
            import struct

            creds = conn.getsockopt(
                socket.SOL_SOCKET, socket.SO_PEERCRED, struct.calcsize("3i")
            )
            _pid, uid, _gid = struct.unpack("3i", creds)
            return f"uid:{uid}"
        except (OSError, AttributeError, struct.error):
            return "unix"

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(_REQUEST_READ_TIMEOUT_S)
        channel = LineChannel(conn)
        try:
            raw = channel.recv_line()
            if raw is None:
                return
            conn.settimeout(None)
            try:
                request = json.loads(raw)
            except ValueError as error:
                channel.send_line(
                    control_line("error", error=f"malformed request: {error}")
                )
                return
            if not isinstance(request, dict):
                channel.send_line(
                    control_line("error", error="request must be an object")
                )
                return
            op = request.get("op")
            if op == "ping":
                channel.send_line(control_line("pong"))
            elif op == "status":
                channel.send_line(
                    control_line("status", **self.status_snapshot())
                )
            elif op == "sweep":
                self._serve_sweep(
                    channel, request, client_id=self._peer_client_id(conn)
                )
            elif op == "cancel":
                key = request.get("key")
                found = (
                    self.cancel_sweep(str(key)) if key is not None else False
                )
                channel.send_line(
                    control_line("cancelled", key=key, found=found)
                )
            else:
                channel.send_line(
                    control_line("error", error=f"unknown op {op!r}")
                )
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError):
            pass  # client went away mid-handshake; nothing to clean up
        finally:
            channel.close()
            with self._conn_lock:
                self._conn_threads.discard(threading.current_thread())

    def _serve_sweep(
        self,
        channel: LineChannel,
        request: Dict[str, Any],
        client_id: Optional[str] = None,
    ) -> None:
        try:
            job, feed, coalesced = self._admit_sweep(
                request, client_id=client_id
            )
        except ConfigurationError as error:
            channel.send_line(control_line("error", error=str(error)))
            return
        except Exception as error:
            # An unexpected admit failure (a registry builder blowing
            # up on exotic inline payloads, say) must still answer with
            # an error line — unwinding silently would hand the client
            # a bare EOF with nothing to diagnose by.
            with self._stats_lock:
                self._errors += 1
            channel.send_line(
                control_line(
                    "error", error=f"{type(error).__name__}: {error}"
                )
            )
            return
        try:
            channel.send_line(
                control_line("ack", key=job.key, coalesced=coalesced)
            )
            while True:
                item = feed.get()
                if isinstance(item, _EndOfStream):
                    channel.send_line(item.line)
                    return
                channel.send_line(item)
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError):
            # This client hung up mid-stream. Only its subscription is
            # dropped; a sweep shared with other subscribers carries
            # on, while dropping the *last* subscription orphans the
            # job and the runner cancels it (see _SweepJob).
            job.detach(feed)

    # -- introspection -------------------------------------------------

    def status_snapshot(self) -> Dict[str, Any]:
        """The daemon's health/stats document (the ``status`` op)."""
        with self._stats_lock:
            snapshot = {
                "socket": self.socket_path,
                "draining": self._draining,
                "uptime_s": round(
                    time.monotonic() - self._started_monotonic, 3
                ),
                "requests": self._requests,
                "coalesced": self._coalesced,
                "fast_path": self._fast_path,
                "sweeps_computed": self._sweeps_computed,
                "errors": self._errors,
                "cancelled": self._cancelled,
                "deadline_exceeded": self._deadline_exceeded,
                "rate_limited": self._rate_limited,
                "active": self._active,
                "queued": self._admission.qsize(),
                "max_active": self.max_active,
            }
        with self._table_lock:
            jobs = list(self._table.values())
        snapshot["jobs"] = [
            {
                "key": job.key,
                "state": job.state,
                "subscribers": job.subscriber_count(),
                "rows": len(job.rows),
                "priority": job.priority,
            }
            for job in jobs
        ]
        stats = simulation_cache_stats()
        snapshot["pool"] = {
            "width": worker_pool_size(),
            "owned": worker_pool_owned(),
            "pids": list(worker_pool_pids()),
        }
        # Executor topology: which backend sweeps dispatch through
        # (fork or socket), the configured hosts, per-host cells
        # completed, and cumulative shard-delta traffic.
        snapshot["executor"] = executor_topology()
        snapshot["cache"] = {
            "entries": stats.size,
            "hits": stats.hits,
            "misses": stats.misses,
            "disk_hits": stats.disk_hits,
            "dir": simulation_cache_dir(),
        }
        with self._stats_lock:
            snapshot["preload"] = {
                "scenarios": list(self.preload),
                "keys": self._preload_keys,
                "warmed": self._preload_warmed,
                "done": self._preload_done,
            }
        disk = simulation_cache_disk()
        if disk is not None:
            disk_stats = disk.stats()
            storage = disk.storage_snapshot()
            storage.update(
                {
                    "hits": disk_stats.hits,
                    "misses": disk_stats.misses,
                    "stores": disk_stats.stores,
                    "skipped_stores": disk_stats.skipped_stores,
                    "errors": disk_stats.errors,
                    "pack_commits": disk_stats.pack_commits,
                    "packed_stores": disk_stats.packed_stores,
                }
            )
            snapshot["disk"] = storage
        else:
            snapshot["disk"] = None
        return snapshot
