"""Blocking client for the ``repro serve`` daemon.

The intended shape is one liner per request::

    from repro.serve.client import connect

    for row in connect().sweep("figure12"):
        print(row["scheme"], row["deca_over_software"])

``sweep`` yields parsed row dicts; ``sweep_lines`` yields the raw JSONL
row lines exactly as the daemon sent them (and exactly as the sweep's
file emitter would have written them — useful for teeing to a file or
for bit-identity assertions). Each call opens its own connection, so
one client object can issue many requests and is trivially
thread-safe.

Connection failures raise :class:`ServeUnavailableError` with a clean,
actionable message; daemon-reported failures (unknown scenario, drain
in progress, a sweep that blew up) raise :class:`ServeRequestError`
carrying the daemon's error text.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional

from repro.serve.protocol import (
    CONTROL_KEY,
    LineChannel,
    default_socket_path,
    parse_control,
    unescape_row,
)


class ServeUnavailableError(RuntimeError):
    """No daemon is reachable on the requested socket."""


class ServeRequestError(RuntimeError):
    """The daemon refused or failed the request (its error text)."""


class ServeClient:
    """A handle on one daemon socket; every request is one connection."""

    def __init__(
        self, socket_path: Optional[str] = None, timeout: float = 300.0
    ) -> None:
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout
        #: The ``ack`` control payload of the most recent sweep request
        #: (request key + whether it coalesced), and the ``end`` payload
        #: once its stream finished (row count + per-request cache
        #: stats). Diagnostics only — not part of the row stream.
        self.last_ack: Optional[Dict[str, Any]] = None
        self.last_summary: Optional[Dict[str, Any]] = None

    def _open(self) -> LineChannel:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except FileNotFoundError:
            sock.close()
            raise ServeUnavailableError(
                f"no serve daemon socket at {self.socket_path} "
                "(start one with `repro serve`)"
            )
        except OSError as error:
            sock.close()
            raise ServeUnavailableError(
                f"cannot reach serve daemon at {self.socket_path}: {error}"
            )
        return LineChannel(sock)

    def _request(self, payload: Dict[str, Any]) -> LineChannel:
        channel = self._open()
        try:
            channel.send_line(json.dumps(payload))
        except OSError as error:
            channel.close()
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} hung up: {error}"
            )
        return channel

    def _stalled(self) -> ServeUnavailableError:
        """The exception a mid-stream read timeout maps to."""
        return ServeUnavailableError(
            f"serve daemon at {self.socket_path} sent no data for "
            f"{self.timeout:g}s (stalled or overloaded); raise the "
            "client timeout= or check `repro serve-request --status`"
        )

    def _recv_line(self, channel: LineChannel) -> Optional[str]:
        """One response line; a read timeout is a daemon-unavailable."""
        try:
            return channel.recv_line()
        except socket.timeout:
            raise self._stalled() from None

    def ping(self) -> bool:
        """Round-trip a ping; True when the daemon answers."""
        with self._request({"op": "ping"}) as channel:
            line = self._recv_line(channel)
        control = parse_control(line) if line is not None else None
        return bool(control) and control[CONTROL_KEY] == "pong"

    def cancel(self, key: str) -> bool:
        """Force-cancel the admitted sweep with ``key`` (from an ack or
        the status document); True when the daemon found a live job."""
        with self._request({"op": "cancel", "key": key}) as channel:
            line = self._recv_line(channel)
        control = parse_control(line) if line is not None else None
        if control is None:
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} closed the "
                "connection without answering"
            )
        if control[CONTROL_KEY] == "error":
            raise ServeRequestError(control.get("error", "unknown error"))
        return bool(control.get("found"))

    def status(self) -> Dict[str, Any]:
        """The daemon's health/stats document."""
        with self._request({"op": "status"}) as channel:
            line = self._recv_line(channel)
        control = parse_control(line) if line is not None else None
        if control is None:
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} closed the "
                "connection without answering"
            )
        if control[CONTROL_KEY] == "error":
            raise ServeRequestError(control.get("error", "unknown error"))
        control.pop(CONTROL_KEY, None)
        return control

    def sweep_lines(
        self,
        scenario: Optional[str] = None,
        inline: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Iterator[str]:
        """Stream one sweep's raw JSONL row lines, in cell-index order.

        Closing the generator early (``break``) closes the connection;
        the daemon drops only this subscription — a sweep shared with
        other clients keeps running, while dropping the *last*
        subscription cancels it. ``deadline_s`` bounds the request's
        lifetime daemon-side; an expired request raises
        :class:`ServeRequestError` with a ``deadline_exceeded:``
        message. A daemon that stalls mid-stream (no line within the
        client ``timeout``) raises :class:`ServeUnavailableError`
        rather than leaking the raw socket timeout.
        """
        request: Dict[str, Any] = {"op": "sweep", "priority": int(priority)}
        if scenario is not None:
            request["scenario"] = scenario
        if inline is not None:
            request["inline"] = inline
        if deadline_s is not None:
            request["deadline_s"] = float(deadline_s)
        self.last_ack = None
        self.last_summary = None
        channel = self._request(request)
        try:
            first = self._recv_line(channel)
            control = parse_control(first) if first is not None else None
            if control is None:
                raise ServeUnavailableError(
                    f"serve daemon at {self.socket_path} closed the "
                    "connection without answering"
                )
            if control[CONTROL_KEY] == "error":
                raise ServeRequestError(
                    control.get("error", "unknown error")
                )
            self.last_ack = control
            while True:
                line = self._recv_line(channel)
                if line is None:
                    break
                mark = parse_control(line)
                if mark is None:
                    yield line
                    continue
                kind = mark[CONTROL_KEY]
                if kind == "row":
                    yield unescape_row(mark)
                elif kind == "end":
                    self.last_summary = mark
                    return
                elif kind == "cancelled":
                    self.last_summary = mark
                    raise ServeRequestError(
                        "sweep was cancelled by the daemon after "
                        f"{mark.get('rows', 0)} row(s)"
                    )
                elif kind == "error":
                    raise ServeRequestError(
                        mark.get("error", "unknown error")
                    )
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} closed the "
                "stream before its end marker"
            )
        finally:
            channel.close()

    def sweep(
        self,
        scenario: Optional[str] = None,
        inline: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream one sweep's rows as parsed dicts, in cell-index order."""
        for line in self.sweep_lines(
            scenario, inline=inline, priority=priority,
            deadline_s=deadline_s,
        ):
            yield json.loads(line)


def connect(
    socket_path: Optional[str] = None, timeout: float = 300.0
) -> ServeClient:
    """A :class:`ServeClient` on ``socket_path`` (default: env/flag)."""
    return ServeClient(socket_path=socket_path, timeout=timeout)
