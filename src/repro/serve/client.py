"""Blocking client for the ``repro serve`` daemon.

The intended shape is one liner per request::

    from repro.serve.client import connect

    for row in connect().sweep("figure12"):
        print(row["scheme"], row["deca_over_software"])

``sweep`` yields parsed row dicts; ``sweep_lines`` yields the raw JSONL
row lines exactly as the daemon sent them (and exactly as the sweep's
file emitter would have written them — useful for teeing to a file or
for bit-identity assertions). Each call opens its own connection, so
one client object can issue many requests and is trivially
thread-safe.

Connection failures raise :class:`ServeUnavailableError` with a clean,
actionable message; daemon-reported failures (unknown scenario, drain
in progress, a sweep that blew up) raise :class:`ServeRequestError`
carrying the daemon's error text.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional

from repro.serve.protocol import (
    CONTROL_KEY,
    LineChannel,
    default_socket_path,
    parse_control,
    unescape_row,
)


class ServeUnavailableError(RuntimeError):
    """No daemon is reachable on the requested socket."""


class ServeRequestError(RuntimeError):
    """The daemon refused or failed the request (its error text)."""


class ServeClient:
    """A handle on one daemon socket; every request is one connection."""

    def __init__(
        self, socket_path: Optional[str] = None, timeout: float = 300.0
    ) -> None:
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout
        #: The ``ack`` control payload of the most recent sweep request
        #: (request key + whether it coalesced), and the ``end`` payload
        #: once its stream finished (row count + per-request cache
        #: stats). Diagnostics only — not part of the row stream.
        self.last_ack: Optional[Dict[str, Any]] = None
        self.last_summary: Optional[Dict[str, Any]] = None

    def _open(self) -> LineChannel:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except FileNotFoundError:
            sock.close()
            raise ServeUnavailableError(
                f"no serve daemon socket at {self.socket_path} "
                "(start one with `repro serve`)"
            )
        except OSError as error:
            sock.close()
            raise ServeUnavailableError(
                f"cannot reach serve daemon at {self.socket_path}: {error}"
            )
        return LineChannel(sock)

    def _request(self, payload: Dict[str, Any]) -> LineChannel:
        channel = self._open()
        try:
            channel.send_line(json.dumps(payload))
        except OSError as error:
            channel.close()
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} hung up: {error}"
            )
        return channel

    def ping(self) -> bool:
        """Round-trip a ping; True when the daemon answers."""
        with self._request({"op": "ping"}) as channel:
            line = channel.recv_line()
        control = parse_control(line) if line is not None else None
        return bool(control) and control[CONTROL_KEY] == "pong"

    def status(self) -> Dict[str, Any]:
        """The daemon's health/stats document."""
        with self._request({"op": "status"}) as channel:
            line = channel.recv_line()
        control = parse_control(line) if line is not None else None
        if control is None:
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} closed the "
                "connection without answering"
            )
        if control[CONTROL_KEY] == "error":
            raise ServeRequestError(control.get("error", "unknown error"))
        control.pop(CONTROL_KEY, None)
        return control

    def sweep_lines(
        self,
        scenario: Optional[str] = None,
        inline: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> Iterator[str]:
        """Stream one sweep's raw JSONL row lines, in cell-index order.

        Closing the generator early (``break``) closes the connection;
        the daemon drops only this subscription — a sweep shared with
        other clients keeps running.
        """
        request: Dict[str, Any] = {"op": "sweep", "priority": int(priority)}
        if scenario is not None:
            request["scenario"] = scenario
        if inline is not None:
            request["inline"] = inline
        self.last_ack = None
        self.last_summary = None
        channel = self._request(request)
        try:
            first = channel.recv_line()
            control = parse_control(first) if first is not None else None
            if control is None:
                raise ServeUnavailableError(
                    f"serve daemon at {self.socket_path} closed the "
                    "connection without answering"
                )
            if control[CONTROL_KEY] == "error":
                raise ServeRequestError(
                    control.get("error", "unknown error")
                )
            self.last_ack = control
            for line in channel.lines():
                mark = parse_control(line)
                if mark is None:
                    yield line
                    continue
                kind = mark[CONTROL_KEY]
                if kind == "row":
                    yield unescape_row(mark)
                elif kind == "end":
                    self.last_summary = mark
                    return
                elif kind == "error":
                    raise ServeRequestError(
                        mark.get("error", "unknown error")
                    )
            raise ServeUnavailableError(
                f"serve daemon at {self.socket_path} closed the "
                "stream before its end marker"
            )
        finally:
            channel.close()

    def sweep(
        self,
        scenario: Optional[str] = None,
        inline: Optional[Dict[str, Any]] = None,
        priority: int = 0,
    ) -> Iterator[Dict[str, Any]]:
        """Stream one sweep's rows as parsed dicts, in cell-index order."""
        for line in self.sweep_lines(
            scenario, inline=inline, priority=priority
        ):
            yield json.loads(line)


def connect(
    socket_path: Optional[str] = None, timeout: float = 300.0
) -> ServeClient:
    """A :class:`ServeClient` on ``socket_path`` (default: env/flag)."""
    return ServeClient(socket_path=socket_path, timeout=timeout)
