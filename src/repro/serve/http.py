"""HTTP/SSE front end for the serve daemon (stdlib only).

A thin adapter that maps HTTP requests onto the *same* admission,
coalescing, and fan-out core as the UNIX-socket transport
(:class:`repro.serve.daemon.ServeDaemon`) — an SSE client and a socket
client asking for the same sweep coalesce onto one compute, and both
are charged against the same per-client admission rate limit.

Endpoints (all ``GET``):

* ``/sweep?scenario=NAME`` or ``/sweep?inline=<JSON>`` — stream the
  sweep as `Server-Sent Events`_. Optional ``priority=N`` and
  ``deadline_s=X`` query parameters carry the socket protocol's fields.
  Control lines become SSE ``event:`` frames (``ack``, ``end``,
  ``cancelled``, ``error``, ``row`` for an escaped row) whose ``data:``
  is the control payload; **row lines stream verbatim as plain
  ``data:`` frames** (no ``event:`` field), so the concatenated default
  frames are byte-identical to the socket stream's row lines.
* ``/cancel?key=KEY`` — force-cancel an admitted sweep by request key;
  answers JSON ``{"serve": "cancelled", "key": ..., "found": ...}``.
* ``/status`` — the daemon's health document as JSON.
* ``/ping`` — ``{"serve": "pong"}``.

Admission failures answer *before* the stream starts: HTTP 429 for a
rate-limited client, 400 for anything else the daemon refused
(unknown scenario, drain in progress, bad ``deadline_s``). A client
closing its SSE connection mid-stream detaches its subscription
exactly like a socket hangup — the last subscriber leaving cancels
the shared sweep.

The front end is transport only: it holds no request state of its own
and can be started/stopped independently of the daemon's socket
(``repro serve --http-port N`` wires it up on the CLI).

.. _Server-Sent Events:
   https://html.spec.whatwg.org/multipage/server-sent-events.html
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.serve.daemon import ServeDaemon, _EndOfStream
from repro.serve.protocol import parse_control

#: Default bind host: local-only, like the UNIX socket it mirrors.
DEFAULT_HOST = "127.0.0.1"


def sse_frame(line: str) -> bytes:
    """One SSE frame for one daemon stream line.

    Control lines (the reserved ``"serve"`` key) become named ``event:``
    frames carrying the control JSON; row lines become plain ``data:``
    frames, byte-for-byte the socket transport's row lines.
    """
    control = parse_control(line)
    if control is None:
        return f"data: {line}\n\n".encode("utf-8")
    kind = control.get("serve")
    return f"event: {kind}\ndata: {line}\n\n".encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; ``server.daemon`` is the ServeDaemon."""

    # Served responses either carry Content-Length or close the
    # connection at the end of the SSE stream; 1.1 keeps curl and
    # browsers from buffering the event stream.
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args: Any) -> None:
        pass  # quiet: the daemon has its own observability surface

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.serve_daemon  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            if parsed.path == "/ping":
                self._send_json(200, {"serve": "pong"})
            elif parsed.path == "/status":
                self._send_json(
                    200, {"serve": "status", **self.daemon.status_snapshot()}
                )
            elif parsed.path == "/cancel":
                key = query.get("key", [None])[0]
                found = (
                    self.daemon.cancel_sweep(key) if key is not None
                    else False
                )
                self._send_json(
                    200, {"serve": "cancelled", "key": key, "found": found}
                )
            elif parsed.path == "/sweep":
                self._serve_sweep(query)
            else:
                self._send_json(
                    404,
                    {"serve": "error", "error": f"no route {parsed.path!r}"},
                )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up

    def _sweep_request(self, query: Dict[str, Any]) -> Dict[str, Any]:
        """The socket-protocol request object a /sweep query describes."""
        request: Dict[str, Any] = {"op": "sweep"}
        scenario = query.get("scenario", [None])[0]
        if scenario is not None:
            request["scenario"] = scenario
        inline = query.get("inline", [None])[0]
        if inline is not None:
            try:
                request["inline"] = json.loads(inline)
            except ValueError as error:
                raise ConfigurationError(
                    f"inline query parameter is not JSON: {error}"
                )
        priority = query.get("priority", [None])[0]
        if priority is not None:
            try:
                request["priority"] = int(priority)
            except ValueError:
                raise ConfigurationError(
                    f"priority must be an integer, got {priority!r}"
                )
        deadline_s = query.get("deadline_s", [None])[0]
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        return request

    def _serve_sweep(self, query: Dict[str, Any]) -> None:
        client_id = f"http:{self.client_address[0]}"
        try:
            request = self._sweep_request(query)
            job, feed, coalesced = self.daemon._admit_sweep(
                request, client_id=client_id
            )
        except ConfigurationError as error:
            status = 429 if str(error).startswith("rate limited") else 400
            self._send_json(status, {"serve": "error", "error": str(error)})
            return
        except Exception as error:
            with self.daemon._stats_lock:
                self.daemon._errors += 1
            self._send_json(
                500,
                {
                    "serve": "error",
                    "error": f"{type(error).__name__}: {error}",
                },
            )
            return
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(
                sse_frame(
                    json.dumps(
                        {"serve": "ack", "key": job.key,
                         "coalesced": coalesced}
                    )
                )
            )
            self.wfile.flush()
            while True:
                item = feed.get()
                if isinstance(item, _EndOfStream):
                    self.wfile.write(sse_frame(item.line))
                    self.wfile.flush()
                    self.close_connection = True
                    return
                self.wfile.write(sse_frame(item))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            # Mid-stream hangup: drop only this subscription — exactly
            # the socket transport's semantics, including the
            # last-subscriber-leaves cancellation.
            job.detach(feed)
            self.close_connection = True


class ServeHttpFrontend:
    """The daemon's HTTP/SSE listener; start()/close() lifecycle.

    Binds ``host:port`` (``port=0`` picks a free one — tests) and
    serves each connection on its own thread. Closing stops the
    listener; in-flight SSE streams are owned by their handler threads
    and wind down with their jobs.
    """

    def __init__(
        self,
        daemon: ServeDaemon,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self.host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("HTTP front end already started")
        try:
            server = ThreadingHTTPServer(
                (self.host, self._requested_port), _Handler
            )
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind HTTP front end on "
                f"{self.host}:{self._requested_port}: {error}"
            )
        server.daemon_threads = True
        server.serve_daemon = self.daemon  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        server = self._server
        if server is None:
            return
        self._server = None
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
