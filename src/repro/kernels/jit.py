"""Instruction-level model of the libxsmm decompression sequence.

``repro.kernels.avx`` *counts* vector operations; this module makes the
sequence concrete: :func:`emit_decompress_sequence` produces the explicit
AVX-style instruction list a libxsmm JIT would generate for one tile, and
:func:`execute_sequence` interprets it against a real compressed tile,
reproducing the reference decompression bit-for-bit.

The two views are tied together by construction — the emitted instruction
counts per category equal the recipe's — so the timing model's vOps/tile
is backed by an executable artifact, not just arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.schemes import CompressionScheme
from repro.errors import ProgramError
from repro.formats.bfloat import bf16_round
from repro.formats.mxfp import decode_shared_scale
from repro.kernels.avx import AvxRecipe, software_recipe
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from repro.units import TILE_COLS_BF16, TILE_ROWS


@dataclass(frozen=True)
class VectorInstruction:
    """One emitted vector instruction.

    Attributes:
        opcode: Mnemonic-like name (e.g. ``"vpexpandw"``).
        category: Recipe category it is charged to.
        row: Tile row the instruction operates on (-1 for tile-level ops).
    """

    opcode: str
    category: str  # 'load' | 'store' | 'compute' | 'bookkeeping'
    row: int = -1


def emit_decompress_sequence(
    scheme: CompressionScheme,
) -> List[VectorInstruction]:
    """Emit the per-tile AVX instruction list for a scheme.

    Mirrors the block structure of :func:`repro.kernels.avx.software_recipe`
    instruction for instruction; the uncompressed baseline emits nothing.
    """
    fmt = scheme.fmt
    bits = fmt.bits
    sparse = scheme.is_sparse
    instructions: List[VectorInstruction] = []
    if bits == 16 and not sparse:
        return instructions
    # Tile-level demand loads: code bytes, bitmask line, scale bytes.
    data_loads = math.ceil(512 * scheme.density * bits / 8 / 64)
    for _ in range(data_loads):
        instructions.append(VectorInstruction("vmovdqu64.load", "load"))
    if sparse:
        instructions.append(VectorInstruction("vmovdqu64.mask", "load"))
    if fmt.is_grouped:
        instructions.append(VectorInstruction("vmovdqu64.scales", "load"))
    for row in range(TILE_ROWS):
        if sparse:
            instructions.append(VectorInstruction("kmovd", "bookkeeping", row))
            instructions.append(
                VectorInstruction(
                    "vpexpandw" if bits == 16 else "vpexpandb",
                    "compute",
                    row,
                )
            )
            instructions.append(VectorInstruction("popcnt", "bookkeeping", row))
            instructions.append(
                VectorInstruction("add.nzptr", "bookkeeping", row)
            )
        if bits == 8:
            instructions.append(VectorInstruction("vpmovzxbw", "compute", row))
            instructions.append(VectorInstruction("vpsllw", "compute", row))
            instructions.append(VectorInstruction("vpermw.merge", "compute", row))
            if not sparse:
                instructions.append(
                    VectorInstruction("valignq", "compute", row)
                )
        elif bits == 4:
            instructions.append(VectorInstruction("vpsrlw.nib", "compute", row))
            instructions.append(VectorInstruction("vpandd.nib", "compute", row))
            instructions.append(
                VectorInstruction("vpunpck.nib", "compute", row)
            )
            instructions.append(VectorInstruction("vpermw.lut0", "compute", row))
            instructions.append(VectorInstruction("vpermw.lut1", "compute", row))
            instructions.append(
                VectorInstruction("vpblendmw.lut", "compute", row)
            )
            if not sparse:
                instructions.append(
                    VectorInstruction("valignq", "compute", row)
                )
        if fmt.is_grouped:
            instructions.append(
                VectorInstruction("vpbroadcastw.scale", "compute", row)
            )
            instructions.append(VectorInstruction("vscalef", "compute", row))
            instructions.append(
                VectorInstruction("vcvtx.scale", "compute", row)
            )
        instructions.append(VectorInstruction("vmovdqu64.store", "store", row))
        instructions.append(VectorInstruction("add.loop", "bookkeeping", row))
    return instructions


def count_by_category(instructions: List[VectorInstruction]) -> AvxRecipe:
    """Aggregate an instruction list into recipe-category counts."""
    counts = {"load": 0.0, "store": 0.0, "compute": 0.0, "bookkeeping": 0.0}
    for instruction in instructions:
        counts[instruction.category] += 1.0
    return AvxRecipe(
        loads=counts["load"],
        stores=counts["store"],
        compute=counts["compute"],
        bookkeeping=counts["bookkeeping"],
    )


def verify_against_recipe(scheme: CompressionScheme) -> bool:
    """Whether the emitted sequence matches the recipe model exactly."""
    emitted = count_by_category(emit_decompress_sequence(scheme))
    recipe = software_recipe(scheme)
    return (
        emitted.loads == recipe.loads
        and emitted.stores == recipe.stores
        and emitted.compute == recipe.compute
        and emitted.bookkeeping == recipe.bookkeeping
    )


def execute_sequence(
    instructions: List[VectorInstruction], tile: CompressedTile
) -> np.ndarray:
    """Interpret an emitted sequence against a compressed tile.

    A small vector machine: a nonzero pointer, a mask register, one value
    register per row in flight, and a 16x32 output buffer. Produces output
    identical to :meth:`CompressedTile.decompress_reference`.
    """
    fmt = tile.fmt
    mask = tile.dense_mask()
    values_all = fmt.decode(tile.codes).astype(np.float32)
    scales = (
        decode_shared_scale(tile.scale_bits)
        if tile.scale_bits is not None
        else None
    )
    if not instructions:
        raise ProgramError(
            "the uncompressed BF16 baseline emits no decompression "
            "sequence; AMX tloads read it directly"
        )
    output = np.zeros(TILE_SHAPE, dtype=np.float32)
    nz_ptr = 0
    row_mask: np.ndarray | None = None
    row_values: np.ndarray | None = None
    row_count = 0
    stored_rows = 0
    for instruction in instructions:
        op = instruction.opcode
        row = instruction.row
        if op.startswith("vmovdqu64.") and instruction.category == "load":
            continue  # data is modelled as already resident
        if op == "kmovd":
            row_mask = mask[row]
        elif op in ("vpexpandw", "vpexpandb"):
            if row_mask is None:
                raise ProgramError("vpexpand before kmovd")
            row_count = int(row_mask.sum())
            expanded = np.zeros(TILE_COLS_BF16, dtype=np.float32)
            expanded[row_mask] = values_all[nz_ptr:nz_ptr + row_count]
            row_values = expanded
        elif op == "popcnt":
            pass  # row_count already derived; hardware computes it here
        elif op == "add.nzptr":
            nz_ptr += row_count
        elif op in (
            "vpmovzxbw", "vpsllw", "vpermw.merge", "valignq",
            "vpsrlw.nib", "vpandd.nib", "vpunpck.nib",
            "vpermw.lut0", "vpermw.lut1", "vpblendmw.lut",
        ):
            if not tile.is_sparse and row_values is None:
                # Dense path: the convert block materialises the row.
                row_values = values_all[
                    row * TILE_COLS_BF16:(row + 1) * TILE_COLS_BF16
                ].copy()
        elif op == "vpbroadcastw.scale":
            pass  # scale register setup
        elif op in ("vscalef", "vcvtx.scale"):
            if op == "vscalef" and scales is not None:
                if row_values is None:
                    raise ProgramError("scaling before dequantization")
                assert fmt.group_size is not None
                first_group = row * TILE_COLS_BF16 // fmt.group_size
                per_elem = np.repeat(
                    scales[
                        first_group:first_group
                        + TILE_COLS_BF16 // fmt.group_size
                    ],
                    fmt.group_size,
                )
                row_values = row_values * per_elem
        elif op == "vmovdqu64.store":
            if row_values is None:
                # 16-bit dense rows reach the store directly.
                row_values = values_all[
                    row * TILE_COLS_BF16:(row + 1) * TILE_COLS_BF16
                ].copy()
            output[row] = bf16_round(row_values)
            row_values = None
            row_mask = None
            stored_rows += 1
        elif op == "add.loop":
            pass
        else:
            raise ProgramError(f"unknown opcode {op!r}")
    if stored_rows != TILE_ROWS:
        raise ProgramError(
            f"sequence stored {stored_rows} rows; a tile has {TILE_ROWS}"
        )
    return output
