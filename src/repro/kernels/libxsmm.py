"""The libxsmm-style software compressed-GeMM kernel (timing side).

The software kernel (Figure 2) decompresses tile i+1 with AVX while AMX
multiplies tile i out of a double-buffered L1 scratch area — an OVERLAPPED
tile stream in this library's simulator. Its defining costs:

* the AVX recipe occupancy (``repro.kernels.avx``),
* ~10 cycles of serial per-tile core work (loop control, AMX issue, buffer
  flip) that cannot overlap the AVX sequence because both run on the same
  instruction stream, and
* demand-load bandwidth through the core's load queue, capped at
  :data:`~repro.sim.pipeline.SW_DEMAND_LOAD_BYTES_PER_CYCLE` per core —
  the reason software decompression saturates DDR but not HBM.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schemes import CompressionScheme
from repro.kernels.avx import (
    AvxVariant,
    effective_vector_throughput,
    software_vops_per_tile,
)
from repro.sim.pipeline import (
    InvocationMode,
    KernelTiming,
    SW_DEMAND_LOAD_BYTES_PER_CYCLE,
)
from repro.sim.system import SimSystem
from repro.units import TILE_BYTES_BF16, TMUL_CYCLES

#: Serial per-tile core overhead of the software kernel (cycles): loop
#: control, AMX tload/tcomp issue, and the double-buffer flip.
SW_TILE_OVERHEAD_CYCLES = 10.0


def software_dec_cycles(
    scheme: CompressionScheme, variant: AvxVariant = AvxVariant.BASELINE
) -> float:
    """AVX-unit occupancy (cycles) to decompress one tile in software."""
    vops = software_vops_per_tile(scheme, variant)
    return vops / effective_vector_throughput(variant)


def software_aixv(
    scheme: CompressionScheme, variant: AvxVariant = AvxVariant.BASELINE
) -> float:
    """The software kernel's matriX-to-Vector arithmetic intensity.

    Defined as matrix ops per vector op (Section 4.1); infinite for the
    uncompressed baseline, which issues no decompression vOps.
    """
    vops = software_vops_per_tile(scheme, variant)
    if vops == 0.0:
        return float("inf")
    return 1.0 / vops


def software_kernel_timing(
    system: SimSystem,
    scheme: CompressionScheme,
    variant: AvxVariant = AvxVariant.BASELINE,
    bytes_per_tile: Optional[float] = None,
) -> KernelTiming:
    """Timing descriptor for the libxsmm software kernel on a scheme.

    ``bytes_per_tile`` overrides the scheme's expected tile footprint, e.g.
    to feed measured per-tile sizes from an actual compressed matrix.
    """
    dec = software_dec_cycles(scheme, variant)
    if dec == 0.0:
        return uncompressed_kernel_timing(system)
    return KernelTiming(
        bytes_per_tile=(
            bytes_per_tile if bytes_per_tile is not None else scheme.bytes_per_tile()
        ),
        dec_cycles=dec,
        mtx_cycles=float(TMUL_CYCLES),
        mode=InvocationMode.OVERLAPPED,
        handoff_cycles=0.0,  # the L1 double buffer is the handoff
        exposed_latency=system.sw_prefetch_exposure,
        prefetch_window=8,
        core_overhead_cycles=SW_TILE_OVERHEAD_CYCLES,
        demand_load_cap=SW_DEMAND_LOAD_BYTES_PER_CYCLE,
        dec_is_avx=True,
    )


def uncompressed_kernel_timing(system: SimSystem) -> KernelTiming:
    """Timing for the uncompressed BF16 baseline.

    AMX tloads stream 1-KB tiles straight from memory; there is no vector
    sequence, and the wide tile loads are not constrained by the software
    demand-load cap (one instruction moves sixteen cache lines).
    """
    return KernelTiming(
        bytes_per_tile=float(TILE_BYTES_BF16),
        dec_cycles=0.0,
        mtx_cycles=float(TMUL_CYCLES),
        mode=InvocationMode.OVERLAPPED,
        handoff_cycles=0.0,
        exposed_latency=system.sw_prefetch_exposure,
        prefetch_window=8,
        core_overhead_cycles=0.0,
        demand_load_cap=None,
        dec_is_avx=False,
    )
