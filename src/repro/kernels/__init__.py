"""Software compressed-GeMM kernels: the paper's libxsmm baseline.

``avx`` models the AVX-512 decompression instruction sequences (and the
scaled-vector alternatives of Figure 15); ``libxsmm`` assembles them into
the double-buffered software kernel's timing; ``gemm`` provides functional
(numerically exact) compressed GeMM execution; ``parlooper`` partitions
tile work across cores like the paper's Parlooper loop parallelizer.
"""

from repro.kernels.avx import (
    AvxRecipe,
    AvxVariant,
    software_recipe,
    software_vops_per_tile,
)
from repro.kernels.libxsmm import (
    software_aixv,
    software_dec_cycles,
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.kernels.gemm import (
    compressed_gemm_reference,
    dense_gemm_reference,
)
from repro.kernels.parlooper import partition_tiles, tiles_for_matrix
from repro.kernels.jit import (
    VectorInstruction,
    emit_decompress_sequence,
    execute_sequence,
    verify_against_recipe,
)

__all__ = [
    "AvxRecipe",
    "AvxVariant",
    "software_recipe",
    "software_vops_per_tile",
    "software_aixv",
    "software_dec_cycles",
    "software_kernel_timing",
    "uncompressed_kernel_timing",
    "compressed_gemm_reference",
    "dense_gemm_reference",
    "partition_tiles",
    "tiles_for_matrix",
    "VectorInstruction",
    "emit_decompress_sequence",
    "execute_sequence",
    "verify_against_recipe",
]
