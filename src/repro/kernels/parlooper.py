"""Parlooper-style loop parallelization: distribute tiles across cores.

The paper uses Parlooper [18] to parallelize the FC-layer loops over the
56 cores. For the simulated workloads what matters is the per-core tile
count (the streams are symmetric); this module provides the block
partitioning plus the tile arithmetic used by the LLM layer models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.units import TILE_COLS_BF16, TILE_ROWS


@dataclass(frozen=True)
class TilePartition:
    """A contiguous range of tile indices assigned to one core."""

    core: int
    start: int
    stop: int

    @property
    def count(self) -> int:
        """Number of tiles in this partition."""
        return self.stop - self.start


def tiles_for_matrix(rows: int, cols: int) -> int:
    """Number of 16x32 weight tiles covering an (rows, cols) matrix."""
    if rows % TILE_ROWS != 0 or cols % TILE_COLS_BF16 != 0:
        raise ConfigurationError(
            f"matrix ({rows}, {cols}) is not tileable by "
            f"({TILE_ROWS}, {TILE_COLS_BF16})"
        )
    return (rows // TILE_ROWS) * (cols // TILE_COLS_BF16)


def partition_tiles(total_tiles: int, cores: int) -> List[TilePartition]:
    """Block-distribute ``total_tiles`` across ``cores`` as evenly as possible.

    The first ``total_tiles % cores`` cores receive one extra tile, so the
    imbalance is at most one tile — the distribution Parlooper produces for
    the paper's large FC layers.
    """
    if total_tiles < 0:
        raise ConfigurationError("total_tiles must be non-negative")
    if cores < 1:
        raise ConfigurationError("cores must be >= 1")
    base, extra = divmod(total_tiles, cores)
    partitions: List[TilePartition] = []
    cursor = 0
    for core in range(cores):
        count = base + (1 if core < extra else 0)
        partitions.append(TilePartition(core, cursor, cursor + count))
        cursor += count
    return partitions


def max_tiles_per_core(total_tiles: int, cores: int) -> int:
    """The critical-path tile count: the busiest core's share."""
    partitions = partition_tiles(total_tiles, cores)
    return max(partition.count for partition in partitions)


def imbalance(partitions: List[TilePartition]) -> Tuple[int, int]:
    """(min, max) tile counts across a partitioning."""
    if not partitions:
        raise ConfigurationError("cannot measure an empty partitioning")
    counts = [partition.count for partition in partitions]
    return min(counts), max(counts)
