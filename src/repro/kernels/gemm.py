"""Functional compressed GeMM execution (numerically exact).

These routines compute the actual numbers a compressed GeMM produces: the
activation tile times the decompressed weight tile, accumulated in float32
exactly like the TMUL does (BF16 inputs, single-precision accumulate).
They are the golden reference the DECA pipeline and the ISA-level program
interpreter are validated against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError
from repro.formats.bfloat import bf16_round
from repro.sparse.compress import CompressedMatrix
from repro.sparse.tile import tile_grid
from repro.units import TILE_COLS_BF16, TILE_ROWS


def dense_gemm_reference(
    activations: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """A @ W^T with BF16 input rounding and float32 accumulation.

    ``activations`` is (N, K), ``weights`` is (M, K); the result is (N, M),
    matching the TMUL's A x W^T tile operation (Section 2.3).
    """
    activations = bf16_round(np.ascontiguousarray(activations, dtype=np.float32))
    weights = bf16_round(np.ascontiguousarray(weights, dtype=np.float32))
    if activations.shape[1] != weights.shape[1]:
        raise CompressionError(
            f"K mismatch: activations {activations.shape} vs weights "
            f"{weights.shape}"
        )
    return activations @ weights.T


def compressed_gemm_reference(
    activations: np.ndarray, matrix: CompressedMatrix
) -> np.ndarray:
    """Tile-by-tile compressed GeMM through the reference decompressor.

    Walks the tile grid exactly like the libxsmm kernel does — decompress
    one weight tile, multiply it against the matching activation columns,
    accumulate into the output block — and therefore produces the same
    floating-point result ordering as a tiled TMUL execution.
    """
    activations = bf16_round(np.ascontiguousarray(activations, dtype=np.float32))
    m_total, k_total = matrix.shape
    n = activations.shape[0]
    if activations.shape[1] != k_total:
        raise CompressionError(
            f"K mismatch: activations {activations.shape} vs compressed "
            f"matrix {matrix.shape}"
        )
    out = np.zeros((n, m_total), dtype=np.float32)
    for (row_slice, col_slice), tile in zip(tile_grid(matrix.shape), matrix.tiles):
        weight_tile = tile.decompress_reference()  # (16, 32)
        act_block = activations[:, col_slice]  # (N, 32)
        out[:, row_slice] += act_block @ weight_tile.T
    return out


def tile_operation(
    activation_tile: np.ndarray, weight_tile: np.ndarray
) -> np.ndarray:
    """One TMUL tile operation: (N, 32) x (16, 32)^T -> (N, 16)."""
    activation_tile = np.ascontiguousarray(activation_tile, dtype=np.float32)
    weight_tile = np.ascontiguousarray(weight_tile, dtype=np.float32)
    if activation_tile.ndim != 2 or activation_tile.shape[1] != TILE_COLS_BF16:
        raise CompressionError(
            f"activation tile must be (N, {TILE_COLS_BF16}), got "
            f"{activation_tile.shape}"
        )
    if activation_tile.shape[0] > TILE_ROWS:
        raise CompressionError(
            f"activation tiles hold at most {TILE_ROWS} rows, got "
            f"{activation_tile.shape[0]}"
        )
    if weight_tile.shape != (TILE_ROWS, TILE_COLS_BF16):
        raise CompressionError(
            f"weight tile must be ({TILE_ROWS}, {TILE_COLS_BF16}), got "
            f"{weight_tile.shape}"
        )
    return bf16_round(activation_tile) @ bf16_round(weight_tile).T
