"""AVX-512 decompression instruction recipes (the software kernel's AI_XV).

Libxsmm decompresses one tile row (32 elements) at a time with vector
instructions (Section 2.4): masked expands rebuild sparse rows, permute-
based look-ups dequantize low-bit codes, and the result is stored to an
L1-resident buffer for the subsequent AMX tload. This module models those
sequences as explicit per-row instruction blocks.

The block sizes are derived from the algorithm structure and calibrated
against the paper's real measurements: with these recipes the Roof-Surface
predictions land within a few percent of Figure 4b's R-S column (e.g.
~197 vOps/tile for MXFP4 -> 2.9 TFLOPS; ~146 for sparse BF8 -> 4.0;
~98 for sparse BF16 -> 5.8) and the dense-BF8 AVX utilisation of Table 3.

Splitting every recipe into loads / stores / compute / bookkeeping lets the
Figure 15 what-if variants reuse them: quadrupling the SIMD *width* shrinks
only compute and bookkeeping (memory operations still move 64-byte lines),
while quadrupling the unit *count* is capped by the core's issue slots.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.schemes import CompressionScheme
from repro.errors import ConfigurationError
from repro.units import TILE_ELEMS, TILE_ROWS

#: Vector-issue slots available to the decompression sequence per cycle.
#: SPR cores are 6-wide but spend slots on loads, stores, AMX and loop
#: control; the paper notes cores already use 40-80% of their commit slots
#: (Section 4.2), so adding SIMD units beyond the issue supply is futile.
CORE_VECTOR_ISSUE_SLOTS = 4

#: Baseline SIMD AVX-512 units per SPR core.
BASELINE_AVX_UNITS = 2


class AvxVariant(enum.Enum):
    """Vector-resource configurations compared in Figure 15."""

    BASELINE = "baseline"
    MORE_UNITS = "more_avx_units"  # 4x unit count, same ISA width
    WIDER_UNITS = "wider_avx_units"  # AVX2048: 4x width, same unit count


@dataclass(frozen=True)
class AvxRecipe:
    """Vector-operation counts for decompressing one 512-element tile."""

    loads: float
    stores: float
    compute: float
    bookkeeping: float

    @property
    def total(self) -> float:
        """Total dynamic vector operations per tile."""
        return self.loads + self.stores + self.compute + self.bookkeeping

    def widened(self, factor: int) -> "AvxRecipe":
        """The recipe under a ``factor``-times wider vector ISA.

        Compute and bookkeeping shrink by the width factor; loads and
        stores do not, because each wide memory operation is still executed
        as ``factor`` cache-line-sized accesses (Section 9.1's optimistic
        AVX2048 model).
        """
        if factor < 1:
            raise ConfigurationError(f"width factor must be >= 1, got {factor}")
        return AvxRecipe(
            loads=self.loads,
            stores=self.stores,
            compute=self.compute / factor,
            bookkeeping=self.bookkeeping / factor,
        )


# Per-row instruction blocks (counts per 32-element row).
_EXPAND_COMPUTE = 1.0  # vpexpand rebuilding the dense row
_EXPAND_BOOKKEEPING = 3.0  # kmov mask, popcnt, nonzero-pointer advance
_DEQUANT_Q8_SPARSE = 3.0  # permute-based 8->16 bit convert of packed codes
_DEQUANT_Q8_DENSE = 3.0  # same convert on a full row...
_ALIGN_DENSE = 1.0  # ...plus realigning 32-byte rows out of 64-byte loads
_UNPACK_Q4 = 3.0  # nibble shift/mask/interleave
_LUT_Q4 = 3.0  # two in-register table permutes plus merge
_SCALE_GROUPED = 3.0  # scale extract, broadcast, multiply
_ROW_STORE = 1.0  # write the decompressed row to the L1 buffer
_ROW_LOOP = 1.0  # loop control / buffer pointer per row


def software_recipe(scheme: CompressionScheme) -> AvxRecipe:
    """The libxsmm AVX recipe for one tile of the given scheme.

    The uncompressed BF16 baseline needs no vector work at all — AMX
    tloads read it straight from memory.
    """
    fmt = scheme.fmt
    bits = fmt.bits
    sparse = scheme.is_sparse
    if bits == 16 and not sparse:
        return AvxRecipe(0.0, 0.0, 0.0, 0.0)
    rows = TILE_ROWS
    compute = 0.0
    bookkeeping = rows * _ROW_LOOP
    stores = rows * _ROW_STORE
    if sparse:
        compute += rows * _EXPAND_COMPUTE
        bookkeeping += rows * _EXPAND_BOOKKEEPING
    if bits == 8:
        compute += rows * (_DEQUANT_Q8_SPARSE if sparse else _DEQUANT_Q8_DENSE)
        if not sparse:
            compute += rows * _ALIGN_DENSE
    elif bits == 4:
        compute += rows * (_UNPACK_Q4 + _LUT_Q4)
        if not sparse:
            compute += rows * _ALIGN_DENSE
    elif bits != 16:
        raise ConfigurationError(
            f"no software recipe for {bits}-bit storage; libxsmm supports "
            "16, 8 and 4 bit schemes"
        )
    if fmt.is_grouped:
        compute += rows * _SCALE_GROUPED
    # Demand loads: code bytes, the bitmask line, and scale factors.
    data_loads = math.ceil(TILE_ELEMS * scheme.density * bits / 8 / 64)
    loads = float(data_loads)
    if sparse:
        loads += 1.0  # the 64-byte bitmask
    if fmt.is_grouped:
        loads += 1.0  # the per-group scale bytes
    return AvxRecipe(
        loads=loads, stores=stores, compute=compute, bookkeeping=bookkeeping
    )


def software_vops_per_tile(
    scheme: CompressionScheme, variant: AvxVariant = AvxVariant.BASELINE
) -> float:
    """Dynamic vector operations per tile under a resource variant."""
    recipe = software_recipe(scheme)
    if variant is AvxVariant.WIDER_UNITS:
        recipe = recipe.widened(4)
    return recipe.total


def effective_vector_throughput(variant: AvxVariant) -> float:
    """Sustainable vector operations per cycle per core for a variant.

    ``MORE_UNITS`` quadruples the SIMD units but the core's issue slots cap
    delivery at :data:`CORE_VECTOR_ISSUE_SLOTS`; the paper declines to
    widen the superscalar core because its area grows quadratically with
    width (Section 7).
    """
    if variant is AvxVariant.MORE_UNITS:
        return float(min(4 * BASELINE_AVX_UNITS, CORE_VECTOR_ISSUE_SLOTS))
    return float(BASELINE_AVX_UNITS)
