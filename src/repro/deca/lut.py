"""The DECA LUT array: programmable dequantization (Section 6.1).

Each of the L "big" LUTs stores 256 BF16 values and is split into four
64-entry sub-LUTs with independent read ports. Dequantizing a code is a
table read addressed by the code bits; reprogramming the table contents
retargets DECA at a different <=8-bit format without any hardware change —
the flexibility argument of Section 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, FormatError
from repro.formats.registry import QuantFormat, dequant_lut

_BIG_LUT_ENTRIES = 256
_SUB_LUTS_PER_BIG = 4


class LutArray:
    """A programmable array of L big LUTs (4 sub-LUTs each).

    The array is programmed once per format via privileged control-register
    writes (:meth:`program`); afterwards :meth:`lookup` dequantizes code
    arrays and :meth:`read_cycles` reports the port-limited cycle count the
    timing model charges.
    """

    def __init__(self, lut_count: int) -> None:
        if lut_count < 1:
            raise ConfigurationError(f"lut_count must be >= 1, got {lut_count}")
        self.lut_count = lut_count
        self._table: Optional[np.ndarray] = None
        self._bits: Optional[int] = None
        self._format_name: Optional[str] = None

    @property
    def is_programmed(self) -> bool:
        """Whether a format table has been loaded."""
        return self._table is not None

    @property
    def format_name(self) -> Optional[str]:
        """Name of the currently programmed format, if any."""
        return self._format_name

    @property
    def bits(self) -> Optional[int]:
        """Code bit-width of the programmed format."""
        return self._bits

    def program(self, fmt: QuantFormat) -> None:
        """Load the dequantization table of a <=8-bit format.

        Narrow formats use only the low ``2**bits`` entries of each big
        LUT; the rest are redundant at runtime, exactly as the paper notes.
        """
        table = dequant_lut(fmt)  # validates bits <= 8
        padded = np.zeros(_BIG_LUT_ENTRIES, dtype=np.float32)
        padded[: table.size] = table
        self._table = padded
        self._bits = fmt.bits
        self._format_name = fmt.name

    def invalidate(self) -> None:
        """Drop the programmed state (context-switch reconfiguration)."""
        self._table = None
        self._bits = None
        self._format_name = None

    def lookup(self, codes: np.ndarray) -> np.ndarray:
        """Dequantize a 1-D array of codes into BF16-valued float32."""
        if self._table is None or self._bits is None:
            raise FormatError("the LUT array has not been programmed")
        codes = np.ascontiguousarray(codes, dtype=np.uint16)
        if codes.size and int(codes.max()) >= (1 << self._bits):
            raise FormatError(
                f"code out of range for the programmed {self._bits}-bit format"
            )
        return self._table[codes]

    def reads_per_cycle(self) -> int:
        """Lq: parallel reads per cycle for the programmed bit-width.

        8-bit codes address a full big LUT (L reads); 7-bit codes can pair
        sub-LUTs (2L); 6-bit and below use each 64-entry sub-LUT
        independently (4L).
        """
        if self._bits is None:
            raise FormatError("the LUT array has not been programmed")
        if self._bits == 8:
            return self.lut_count
        if self._bits == 7:
            return 2 * self.lut_count
        return _SUB_LUTS_PER_BIG * self.lut_count

    def read_cycles(self, window: int) -> int:
        """Cycles to dequantize a window of ``window`` codes (min 1)."""
        if window < 0:
            raise ConfigurationError("window must be non-negative")
        if window == 0:
            return 1
        lq = self.reads_per_cycle()
        return -(-window // lq)

    def read_cycles_batch(self, windows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_cycles` over an array of window sizes."""
        windows = np.asarray(windows, dtype=np.int64)
        if windows.size and int(windows.min()) < 0:
            raise ConfigurationError("window must be non-negative")
        lq = self.reads_per_cycle()
        return np.maximum(1, -(-windows // lq))
