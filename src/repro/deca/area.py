"""DECA area model (Section 8).

The paper estimates 56 PEs at {W=32, L=8} occupy ~2.51 mm^2 in 7 nm —
under 0.2% of the ~1600 mm^2 SPR die — split roughly 55% Loaders/queues/
TOut registers, 22% LUT array, 23% everything else (crossbar, prefix sum,
BF16 multipliers). This module reproduces that estimate parametrically:
the buffering scales linearly with W, the LUT array linearly with L, and
the crossbar quadratically with W, so alternative (W, L) designs can be
costed the same way the paper's DSE does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.deca.config import DecaConfig
from repro.errors import ConfigurationError

#: Published reference point: 56 PEs at {W=32, L=8} in 7 nm.
REFERENCE_TOTAL_MM2 = 2.51
REFERENCE_PES = 56
REFERENCE_WIDTH = 32
REFERENCE_LUTS = 8
#: The paper's area split at the reference design.
REFERENCE_FRACTIONS = {"buffering": 0.55, "lut_array": 0.22, "logic": 0.23}
#: SPR die area used for the overhead claim.
SPR_DIE_MM2 = 1600.0

# Per-PE reference areas (mm^2) derived from the published breakdown.
_REF_PE_TOTAL = REFERENCE_TOTAL_MM2 / REFERENCE_PES
_REF_BUFFERING = _REF_PE_TOTAL * REFERENCE_FRACTIONS["buffering"]
_REF_LUT = _REF_PE_TOTAL * REFERENCE_FRACTIONS["lut_array"]
_REF_LOGIC = _REF_PE_TOTAL * REFERENCE_FRACTIONS["logic"]
# Logic splits into the W^2-scaling crossbar and W-scaling datapath. The
# crossbar share follows the high-radix switch data the paper cites [10].
_REF_CROSSBAR = _REF_LOGIC * 0.5
_REF_DATAPATH = _REF_LOGIC * 0.5


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-structure area of a DECA deployment (mm^2)."""

    pes: int
    buffering: float
    lut_array: float
    crossbar: float
    datapath: float

    @property
    def total(self) -> float:
        """Total area across all PEs."""
        return self.buffering + self.lut_array + self.crossbar + self.datapath

    @property
    def per_pe(self) -> float:
        """Area of one PE."""
        return self.total / self.pes

    def fractions(self) -> Dict[str, float]:
        """Fraction of total area per structure group.

        ``logic`` aggregates crossbar + datapath to match the paper's
        three-way 55/22/23 split.
        """
        total = self.total
        return {
            "buffering": self.buffering / total,
            "lut_array": self.lut_array / total,
            "logic": (self.crossbar + self.datapath) / total,
        }

    def die_overhead(self, die_mm2: float = SPR_DIE_MM2) -> float:
        """Fraction of the die the deployment occupies."""
        if die_mm2 <= 0:
            raise ConfigurationError("die area must be positive")
        return self.total / die_mm2


def deca_area(
    config: DecaConfig | None = None, pes: int = REFERENCE_PES
) -> AreaBreakdown:
    """Area of ``pes`` DECA PEs with the given (W, L) configuration.

    Scaling rules: buffering (queues, TOut, LDQ) and the scalar datapath
    scale linearly with W; the LUT array linearly with L; the expansion
    crossbar quadratically with W (wire-dominated switch).
    """
    config = config if config is not None else DecaConfig()
    if pes < 1:
        raise ConfigurationError(f"pes must be >= 1, got {pes}")
    w_ratio = config.width / REFERENCE_WIDTH
    l_ratio = config.lut_count / REFERENCE_LUTS
    return AreaBreakdown(
        pes=pes,
        buffering=pes * _REF_BUFFERING * w_ratio,
        lut_array=pes * _REF_LUT * l_ratio,
        crossbar=pes * _REF_CROSSBAR * w_ratio**2,
        datapath=pes * _REF_DATAPATH * w_ratio,
    )
