"""DECA processing-element configuration.

The two headline parameters are the vOp output width ``W`` (elements
produced per pipeline slot) and the number of "big" 256-entry LUTs ``L``
(elements dequantizable per cycle, modulated by the code bit-width). The
paper's design-space exploration settles on {W=32, L=8} (Section 9.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bubbles import lut_reads_per_cycle
from repro.errors import ConfigurationError
from repro.units import TILE_ELEMS


@dataclass(frozen=True)
class DecaConfig:
    """Microarchitectural parameters of one DECA PE.

    Attributes:
        width: W — BF16 elements one vOp writes to the TOut register.
        lut_count: L — number of 256-entry big LUTs in the LUT array.
        n_loaders: Loader modules (and TOut registers); two enable the
            double buffering of Figure 8.
        ldq_entries: Load-queue entries per Loader.
        sqq_bytes: Sparse Quantized Queue capacity per Loader.
        pipeline_stages: Depth of the vOp pipeline (dequant, expand,
            scale — Figure 11).
    """

    width: int = 32
    lut_count: int = 8
    n_loaders: int = 2
    ldq_entries: int = 16
    sqq_bytes: int = 256
    pipeline_stages: int = 3

    def __post_init__(self) -> None:
        if self.width < 1 or TILE_ELEMS % self.width != 0:
            raise ConfigurationError(
                f"W must divide {TILE_ELEMS}, got {self.width}"
            )
        if self.lut_count < 1:
            raise ConfigurationError(f"L must be >= 1, got {self.lut_count}")
        if self.lut_count > self.width:
            raise ConfigurationError(
                f"L={self.lut_count} > W={self.width} adds LUTs that can "
                "never be read in a single vOp"
            )
        if self.n_loaders < 1:
            raise ConfigurationError("at least one Loader is required")
        if self.ldq_entries < 1 or self.sqq_bytes < 64:
            raise ConfigurationError("queues must hold at least one line")
        if self.pipeline_stages < 1:
            raise ConfigurationError("the pipeline needs at least one stage")

    @property
    def vops_per_tile(self) -> int:
        """Chunks per 512-element tile: 512 / W."""
        return TILE_ELEMS // self.width

    def lq(self, bits: int) -> int:
        """Elements dequantizable per cycle for ``bits``-wide codes."""
        return lut_reads_per_cycle(self.lut_count, bits)

    def dequant_cycles_for_window(self, window: int, bits: int) -> int:
        """Cycles a vOp occupies the dequantization stage.

        A window of ``window`` nonzeros needs ``ceil(window / Lq)`` LUT
        cycles (minimum one even for an all-zero window — the vOp still
        flows through the stage).
        """
        if window < 0 or window > self.width:
            raise ConfigurationError(
                f"window must be in [0, {self.width}], got {window}"
            )
        lq = self.lq(bits)
        return max(1, -(-window // lq))

    def dequant_cycles_for_windows(
        self, windows: np.ndarray, bits: int
    ) -> np.ndarray:
        """Vectorized :meth:`dequant_cycles_for_window` over window sizes."""
        windows = np.asarray(windows, dtype=np.int64)
        if windows.size and (
            int(windows.min()) < 0 or int(windows.max()) > self.width
        ):
            raise ConfigurationError(
                f"windows must be in [0, {self.width}]"
            )
        lq = self.lq(bits)
        return np.maximum(1, -(-windows // lq))


#: The paper's chosen design.
BASELINE_CONFIG = DecaConfig(width=32, lut_count=8)

#: The Figure 16 comparison designs.
UNDERPROVISIONED_CONFIG = DecaConfig(width=8, lut_count=4)
OVERPROVISIONED_CONFIG = DecaConfig(width=64, lut_count=64)
