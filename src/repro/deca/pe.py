"""The complete DECA processing element (Figure 7 / Figure 11).

A :class:`DecaPE` ties together the Loaders, the vOp pipeline, and the
TOut registers, and models the architectural state that survives context
switches (control registers + LUT contents, but never tile data —
Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.deca.config import DecaConfig
from repro.deca.loader import Loader, TileMetadata
from repro.deca.pipeline import DecaPipeline, TileDecodeStats
from repro.errors import SimulationError
from repro.sparse.tile import CompressedTile


@dataclass
class PeStatistics:
    """Lifetime counters of one PE."""

    tiles_processed: int = 0
    vops_executed: int = 0
    bubbles: int = 0
    bytes_fetched: int = 0
    squashes: int = 0


class DecaPE:
    """One near-core DECA processing element.

    Usage: :meth:`configure` for a format (privileged, per-process), then
    :meth:`process_tile` per tile. Loaders alternate automatically to model
    the double buffering; :meth:`read_tout` returns the decompressed tile
    the way a core tload would.
    """

    def __init__(self, config: Optional[DecaConfig] = None) -> None:
        self.config = config if config is not None else DecaConfig()
        self.pipeline = DecaPipeline(self.config)
        self.loaders: List[Loader] = [
            Loader(loader_id=i, sqq_capacity=self.config.sqq_bytes)
            for i in range(self.config.n_loaders)
        ]
        self._tout: List[Optional[np.ndarray]] = [None] * self.config.n_loaders
        self._next_loader = 0
        self.stats = PeStatistics()

    # ------------------------------------------------------------------
    # Configuration and context-switch state.
    # ------------------------------------------------------------------
    def configure(self, format_name: str) -> None:
        """Program control registers and LUTs for a storage format."""
        self.pipeline.configure(format_name)

    def save_state(self) -> Dict[str, object]:
        """The state the OS saves on a context switch.

        Only control registers and LUT contents — in-flight tile data is
        never architectural (a new process simply re-invokes).
        """
        return {"format_name": self.pipeline.format_name}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore previously saved configuration state."""
        format_name = state.get("format_name")
        if format_name is not None:
            self.pipeline.configure(str(format_name))

    # ------------------------------------------------------------------
    # Tile processing.
    # ------------------------------------------------------------------
    def process_tile(
        self, tile: CompressedTile, loader_id: Optional[int] = None
    ) -> Tuple[int, TileDecodeStats]:
        """Fetch, decompress, and park one tile in a TOut register.

        Returns (tout_index, stats); read the data with :meth:`read_tout`.
        """
        if loader_id is None:
            loader_id = self._next_loader
            self._next_loader = (self._next_loader + 1) % len(self.loaders)
        if not 0 <= loader_id < len(self.loaders):
            raise SimulationError(f"no loader {loader_id} on this PE")
        loader = self.loaders[loader_id]
        metadata = TileMetadata.for_tile(tile)
        loader.begin_fetch(metadata)
        try:
            out, stats = self.pipeline.decompress_tile(tile)
        except Exception:
            loader.squash()
            self.stats.squashes += 1
            raise
        loader.complete()
        self._tout[loader_id] = out
        self.stats.tiles_processed += 1
        self.stats.vops_executed += stats.vops
        self.stats.bubbles += stats.bubbles
        self.stats.bytes_fetched += metadata.total_bytes
        return loader_id, stats

    def read_tout(self, tout_index: int) -> np.ndarray:
        """Read a TOut register (what the core's tload/TEPL consumes)."""
        if not 0 <= tout_index < len(self._tout):
            raise SimulationError(f"no TOut register {tout_index}")
        data = self._tout[tout_index]
        if data is None:
            raise SimulationError(
                f"TOut register {tout_index} holds no decompressed tile"
            )
        return data

    def squash(self) -> None:
        """Abort all in-flight work (core pipeline flush, Section 5.3).

        Safe at any point: DECA never updates memory state, so the core may
        simply reissue the same invocations afterwards.
        """
        for loader in self.loaders:
            if loader.busy:
                loader.squash()
                self.stats.squashes += 1
        self._tout = [None] * len(self.loaders)
