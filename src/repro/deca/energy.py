"""Energy model for compressed-GeMM execution.

The paper's Figure 14 observation — "the extra cores can either be
freed-up for other workloads ... or power-gated to save energy" — implies
an energy story this module quantifies. It combines:

* per-core active/idle power (SPR-class cores at a few watts each),
* a DECA PE's power, scaled from its area share (Section 8: a PE is
  ~0.045 mm^2, roughly 0.15% of a core's footprint, so single-digit
  hundreds of milliwatts with its SRAM-heavy composition),
* and memory access energy per bit (HBM ~4 pJ/bit, DDR ~15 pJ/bit class
  figures from the public literature).

The absolute constants are order-of-magnitude engineering numbers (the
paper reports no energy results); the *comparisons* — compression saves
memory energy proportionally to CF, and a few DECA cores beat many
conventional cores on energy — are robust to them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.pipeline import SimResult
from repro.sim.system import SimSystem

#: Active power of one SPR-class core running AVX/AMX-heavy code (watts).
CORE_ACTIVE_WATTS = 5.5
#: Power of one core in a power-gated/parked state (watts).
CORE_IDLE_WATTS = 0.4
#: Power of one active DECA PE (watts) — SRAM-dominated, ~0.045 mm^2.
DECA_PE_WATTS = 0.25
#: Memory access energy per bit (picojoules).
HBM_PJ_PER_BIT = 4.0
DDR_PJ_PER_BIT = 15.0
#: Uncore/fabric power attributed per active core (watts).
UNCORE_WATTS_PER_CORE = 1.5


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one simulated GeMM execution (joules)."""

    core_joules: float
    deca_joules: float
    memory_joules: float
    idle_joules: float

    @property
    def total(self) -> float:
        """Total energy."""
        return (
            self.core_joules
            + self.deca_joules
            + self.memory_joules
            + self.idle_joules
        )

    def as_millijoules(self) -> dict:
        """Rounded mJ view for reports."""
        return {
            "cores": round(self.core_joules * 1e3, 2),
            "deca": round(self.deca_joules * 1e3, 2),
            "memory": round(self.memory_joules * 1e3, 2),
            "idle": round(self.idle_joules * 1e3, 2),
            "total": round(self.total * 1e3, 2),
        }


def memory_pj_per_bit(system: SimSystem) -> float:
    """Access energy per bit for the system's memory technology."""
    # HBM-class systems in this library have >400 GB/s of bandwidth.
    if system.machine.memory_bandwidth > 400e9:
        return HBM_PJ_PER_BIT
    return DDR_PJ_PER_BIT


def gemm_energy(
    system: SimSystem,
    result: SimResult,
    total_tiles: int,
    bytes_per_tile: float,
    uses_deca: bool,
    parked_cores: int = 0,
) -> EnergyBreakdown:
    """Energy to execute a compressed GeMM of ``total_tiles`` tiles.

    ``result`` supplies the per-tile steady-state interval; ``parked_cores``
    counts power-gated cores kept on-die but idle (the Figure 14 scenario
    where 16 DECA cores replace 56 conventional ones).
    """
    if total_tiles < 1:
        raise ConfigurationError("total_tiles must be >= 1")
    if bytes_per_tile <= 0:
        raise ConfigurationError("bytes_per_tile must be positive")
    if parked_cores < 0:
        raise ConfigurationError("parked_cores must be non-negative")
    seconds = total_tiles / result.tiles_per_second
    active_cores = system.cores
    core_power = active_cores * (CORE_ACTIVE_WATTS + UNCORE_WATTS_PER_CORE)
    deca_power = active_cores * DECA_PE_WATTS if uses_deca else 0.0
    memory_bits = total_tiles * bytes_per_tile * 8.0
    return EnergyBreakdown(
        core_joules=core_power * seconds,
        deca_joules=deca_power * seconds,
        memory_joules=memory_bits * memory_pj_per_bit(system) * 1e-12,
        idle_joules=parked_cores * CORE_IDLE_WATTS * seconds,
    )
