"""The DECA vOp pipeline: functional and cycle-exact (Figure 11).

A tile flows through three stages — Dequantization (LUT array), Expansion
(prefix sum + crossbar), Scaling (BF16 multipliers) — in chunks of W output
elements per vOp. The pipeline accepts one vOp per cycle unless a vOp's
input window exceeds the LUT array's read ports, in which case it occupies
the dequantization stage for extra cycles (bubbles).

``decompress_tile`` produces output bit-identical to
:meth:`repro.sparse.tile.CompressedTile.decompress_reference` *and* the
exact cycle count, including the distribution of bubbles that the paper's
binomial model (Section 6.2) only predicts in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.deca.config import DecaConfig
from repro.deca.crossbar import expand_window, split_windows
from repro.deca.lut import LutArray
from repro.errors import FormatError
from repro.formats.bfloat import bf16_round
from repro.formats.mxfp import decode_shared_scale
from repro.formats.registry import get_format
from repro.sparse.tile import CompressedTile, TILE_SHAPE
from repro.units import TILE_ELEMS


@dataclass(frozen=True)
class TileDecodeStats:
    """Cycle accounting for one tile's journey through the pipeline."""

    vops: int
    bubbles: int
    dequant_cycles: int
    total_cycles: int
    window_sizes: Tuple[int, ...]

    @property
    def bubbles_per_vop(self) -> float:
        """Average bubbles per vOp — comparable to the analytical bpv."""
        return self.bubbles / self.vops


class DecaPipeline:
    """One PE's decompression pipeline.

    Configure it for a format with :meth:`configure`, then feed tiles. The
    configuration mirrors the privileged control-register writes of
    Section 5.1 (including LUT programming).
    """

    def __init__(self, config: DecaConfig) -> None:
        self.config = config
        self.lut = LutArray(config.lut_count)
        self._format_name: str | None = None

    @property
    def format_name(self) -> str | None:
        """Format the pipeline is currently configured for."""
        return self._format_name

    def configure(self, format_name: str) -> None:
        """Program the pipeline (and LUT array) for a storage format.

        16-bit formats bypass the LUT stage, so no table is loaded.
        """
        fmt = get_format(format_name)
        if fmt.lut_supported:
            self.lut.program(fmt)
        else:
            self.lut.invalidate()
        self._format_name = fmt.name

    def decompress_tile(
        self, tile: CompressedTile
    ) -> Tuple[np.ndarray, TileDecodeStats]:
        """Decompress one tile; returns (dense BF16 float32 tile, stats).

        Raises :class:`FormatError` if the pipeline is configured for a
        different format than the tile carries — real DECA would need an
        OS-mediated reconfiguration (Section 5.1).
        """
        self._check_tile(tile)
        fmt = tile.fmt
        uses_lut = fmt.lut_supported
        mask = tile.dense_mask().ravel()
        window_sizes, _window_starts = split_windows(mask, self.config.width)
        # Stage 1+2: dequantize every window in one LUT gather, then expand
        # all of them to density with a single masked scatter. Windows hold
        # consecutive runs of the code stream, so the per-window crossbar
        # routing concatenates to exactly "codes land at their mask
        # positions in order" — bit-identical to expanding window by
        # window (the retained ``_decompress_tile_windowed`` loop).
        if uses_lut:
            values = self.lut.lookup(tile.codes.astype(np.uint16))
            dequant_cycles = int(
                np.sum(self.lut.read_cycles_batch(window_sizes))
            )
        else:
            # 16-bit pass-through: the SQQ feeds the expansion stage
            # directly, one vOp per cycle.
            values = fmt.decode(tile.codes).astype(np.float32)
            dequant_cycles = int(len(window_sizes))
        dense = np.zeros(TILE_ELEMS, dtype=np.float32)
        dense[mask] = values
        # Stage 3: group scaling (skipped when the scheme has no groups).
        if tile.scale_bits is not None:
            scales = decode_shared_scale(tile.scale_bits)
            assert fmt.group_size is not None
            dense = dense * np.repeat(scales, fmt.group_size)
        out = bf16_round(dense).reshape(TILE_SHAPE)
        vops = int(len(window_sizes))
        bubbles = dequant_cycles - vops
        stats = TileDecodeStats(
            vops=vops,
            bubbles=bubbles,
            dequant_cycles=dequant_cycles,
            total_cycles=dequant_cycles + (self.config.pipeline_stages - 1),
            window_sizes=tuple(int(s) for s in window_sizes),
        )
        return out, stats

    def _check_tile(self, tile: CompressedTile) -> None:
        if self._format_name is None:
            raise FormatError("the pipeline has not been configured")
        if tile.format_name != self._format_name:
            raise FormatError(
                f"pipeline configured for {self._format_name!r} but the "
                f"tile is {tile.format_name!r}"
            )

    def _decompress_tile_windowed(
        self, tile: CompressedTile
    ) -> Tuple[np.ndarray, TileDecodeStats]:
        """Per-window reference for :meth:`decompress_tile`.

        Walks the vOp windows one at a time — one LUT read group and one
        crossbar expansion per window, exactly as the hardware pipeline
        slots execute. Retained as the golden model for the batched path
        (the equivalence tests assert bit-identical output and stats) and
        as the "before" measurement in ``benchmarks/perf``.
        """
        self._check_tile(tile)
        fmt = tile.fmt
        uses_lut = fmt.lut_supported
        mask = tile.dense_mask().ravel()
        window_sizes, window_starts = split_windows(mask, self.config.width)
        dense = np.zeros(TILE_ELEMS, dtype=np.float32)
        dequant_cycles = 0
        width = self.config.width
        for i, (size, start) in enumerate(zip(window_sizes, window_starts)):
            codes = tile.codes[start:start + size]
            if uses_lut:
                values = self.lut.lookup(codes.astype(np.uint16))
                dequant_cycles += self.lut.read_cycles(int(size))
            else:
                values = fmt.decode(codes).astype(np.float32)
                dequant_cycles += 1
            window_mask = mask[i * width:(i + 1) * width]
            dense[i * width:(i + 1) * width] = expand_window(values, window_mask)
        if tile.scale_bits is not None:
            scales = decode_shared_scale(tile.scale_bits)
            assert fmt.group_size is not None
            dense = dense * np.repeat(scales, fmt.group_size)
        out = bf16_round(dense).reshape(TILE_SHAPE)
        vops = int(len(window_sizes))
        stats = TileDecodeStats(
            vops=vops,
            bubbles=dequant_cycles - vops,
            dequant_cycles=dequant_cycles,
            total_cycles=dequant_cycles + (self.config.pipeline_stages - 1),
            window_sizes=tuple(int(s) for s in window_sizes),
        )
        return out, stats
