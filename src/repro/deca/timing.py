"""DECA timing helpers: expected and exact per-tile decompression cycles.

The *expected* cycle count uses the paper's binomial bubble model
(Section 6.2); the *exact* count walks real bitmasks through
:func:`repro.deca.crossbar.split_windows`. The two agree in expectation —
a property the test suite checks statistically.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.bubbles import deca_aixv, deca_vops_per_tile
from repro.core.schemes import CompressionScheme
from repro.deca.config import DecaConfig
from repro.deca.crossbar import split_windows
from repro.sparse.compress import CompressedMatrix


def _dequant_needed(scheme: CompressionScheme) -> bool:
    """16-bit storage bypasses the LUT stage entirely."""
    return scheme.fmt.bits <= 8


def deca_dec_cycles(config: DecaConfig, scheme: CompressionScheme) -> float:
    """Expected pipeline occupancy (cycles) per tile for a scheme."""
    return deca_vops_per_tile(
        width=config.width,
        lut_count=config.lut_count,
        bits=min(scheme.fmt.bits, 8),
        density=scheme.density,
        sparse=scheme.is_sparse,
        dequant_needed=_dequant_needed(scheme),
    )


def deca_aixv_for_scheme(
    config: DecaConfig, scheme: CompressionScheme
) -> float:
    """The (W, L) design's AI_XV for a scheme: 1 / expected cycles."""
    return deca_aixv(
        width=config.width,
        lut_count=config.lut_count,
        bits=min(scheme.fmt.bits, 8),
        density=scheme.density,
        sparse=scheme.is_sparse,
        dequant_needed=_dequant_needed(scheme),
    )


def exact_dec_cycles(
    config: DecaConfig, matrix: CompressedMatrix
) -> List[float]:
    """Exact per-tile pipeline occupancies for a real compressed matrix.

    For each tile, splits the bitmask into vOp windows and charges the
    LUT-port-limited dequantization cycles — the same arithmetic the
    cycle-exact pipeline performs, without materialising the values.
    """
    scheme_bits = min(matrix.tiles[0].fmt.bits, 8) if matrix.tiles else 8
    lut_capable = matrix.tiles[0].fmt.lut_supported if matrix.tiles else True
    cycles: List[float] = []
    for tile in matrix.tiles:
        mask = tile.dense_mask().ravel()
        windows, _starts = split_windows(mask, config.width)
        if lut_capable:
            lq = config.lq(scheme_bits)
            per_vop = np.maximum(1, -(-windows // lq))
            cycles.append(float(per_vop.sum()))
        else:
            cycles.append(float(len(windows)))
    return cycles
