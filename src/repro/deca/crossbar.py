"""The expansion stage: POPCNT, parallel prefix sum, and the crossbar.

De-sparsification routes each packed nonzero to its dense position. The
hardware (Figure 11) derives crossbar control signals from the bitmask via
a parallel prefix sum; this module implements the same computation
functionally and exposes the window arithmetic the timing model needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sparse.bitmask import expansion_indices


def window_popcount(mask_bits: np.ndarray) -> int:
    """Number of nonzeros a vOp window must read from the SQQ."""
    mask_bits = np.ascontiguousarray(mask_bits, dtype=bool)
    return int(mask_bits.sum())


def expand_window(values: np.ndarray, mask_bits: np.ndarray) -> np.ndarray:
    """Expand packed values into their dense positions (zeros elsewhere).

    ``values`` holds exactly ``popcount(mask_bits)`` entries; the result
    has one slot per mask bit. This is the crossbar operation, with the
    routing indices produced by the prefix-sum circuitry.
    """
    mask_bits = np.ascontiguousarray(mask_bits, dtype=bool)
    values = np.ascontiguousarray(values, dtype=np.float32)
    expected = int(mask_bits.sum())
    if values.size != expected:
        raise SimulationError(
            f"window carries {values.size} values but the mask selects "
            f"{expected}"
        )
    out = np.zeros(mask_bits.size, dtype=np.float32)
    if expected:
        indices = expansion_indices(mask_bits)
        out[mask_bits] = values[indices[mask_bits]]
    return out


def split_windows(
    mask_bits: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-vOp window sizes and start offsets into the nonzero stream.

    Splits a tile's 512 mask bits into 512/W consecutive windows; returns
    (window_sizes, window_starts) where ``window_starts[i]`` is the SQQ
    position the i-th vOp reads from — the "next window head" the POPCNT
    circuitry computes ahead of the pipeline.
    """
    mask_bits = np.ascontiguousarray(mask_bits, dtype=bool).ravel()
    if width < 1 or mask_bits.size % width != 0:
        raise SimulationError(
            f"W={width} must divide the mask length {mask_bits.size}"
        )
    per_window = mask_bits.reshape(-1, width).sum(axis=1).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(per_window)[:-1]))
    return per_window, starts
