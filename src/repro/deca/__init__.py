"""DECA: the near-core ML-model decompression accelerator (Section 6).

This package implements the DECA processing element both *functionally*
(bit-exact dequantize -> expand -> scale, validated against the reference
decompressor) and *temporally* (cycle-exact vOp pipeline with LUT-port
bubbles, cross-checked against the paper's binomial bubble model), plus
the Loader/prefetcher front end, the system-integration options of
Section 9.3, and the area model of Section 8.
"""

from repro.deca.config import DecaConfig
from repro.deca.lut import LutArray
from repro.deca.crossbar import expand_window
from repro.deca.pipeline import DecaPipeline, TileDecodeStats
from repro.deca.loader import Loader, LoaderQueues
from repro.deca.pe import DecaPE
from repro.deca.integration import (
    DecaIntegration,
    INTEGRATION_LADDER,
    deca_kernel_timing,
)
from repro.deca.timing import deca_dec_cycles, deca_aixv_for_scheme
from repro.deca.area import AreaBreakdown, deca_area
from repro.deca.energy import EnergyBreakdown, gemm_energy

__all__ = [
    "DecaConfig",
    "LutArray",
    "expand_window",
    "DecaPipeline",
    "TileDecodeStats",
    "Loader",
    "LoaderQueues",
    "DecaPE",
    "DecaIntegration",
    "INTEGRATION_LADDER",
    "deca_kernel_timing",
    "deca_dec_cycles",
    "deca_aixv_for_scheme",
    "AreaBreakdown",
    "deca_area",
    "EnergyBreakdown",
    "gemm_energy",
]
