"""DECA system-integration options: the Figure 17 ablation ladder.

Section 9.3 starts from a pessimistic base configuration (DECA reads
compressed tiles via the LLC, writes decompressed tiles to the L2, and is
invoked with stores and fences) and progressively enables:

1. ``+Reads L2``        — fetch through the L2 and its hardware prefetcher,
2. ``+DECA prefetcher`` — DECA's own aggressive tile prefetcher,
3. ``+TOut Regs``       — the core reads TOut registers directly,
4. ``+TEPL``            — out-of-order invocation via the TEPL extension.

Each option maps onto concrete :class:`~repro.sim.pipeline.KernelTiming`
parameters; ``deca_kernel_timing`` performs that mapping.
"""

from __future__ import annotations

import functools as _functools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.core.schemes import CompressionScheme
from repro.deca.config import DecaConfig
from repro.deca.timing import deca_dec_cycles
from repro.errors import ConfigurationError
from repro.sim.pipeline import InvocationMode, KernelTiming
from repro.sim.system import SimSystem
from repro.units import TMUL_CYCLES

#: Outstanding tile fetches for each prefetch discipline.
_WINDOW_NO_PREFETCH = 2  # just the two Loaders' demand fetches
_WINDOW_L2_PREFETCHER = 8
_WINDOW_DECA_PREFETCHER = 24

#: Extra cycles for the decompressed tile to travel DECA -> L2 -> core
#: when TOut registers are not used (an L2 store-and-reload round trip).
_L2_ROUNDTRIP_EXTRA = 8.0


@dataclass(frozen=True)
class DecaIntegration:
    """Which integration features are enabled (Figure 17)."""

    reads_l2: bool = True
    own_prefetcher: bool = True
    tout_regs: bool = True
    tepl: bool = True
    label: str = "DECA"

    def __post_init__(self) -> None:
        if self.own_prefetcher and not self.reads_l2:
            raise ConfigurationError(
                "DECA's prefetcher targets the L2; enable reads_l2 first"
            )

    @property
    def prefetch_window(self) -> int:
        """Outstanding tile fetches under this discipline."""
        if self.own_prefetcher:
            return _WINDOW_DECA_PREFETCHER
        if self.reads_l2:
            return _WINDOW_L2_PREFETCHER
        return _WINDOW_NO_PREFETCH

    def exposed_latency(self, system: SimSystem) -> float:
        """Fraction of memory latency each tile fetch leaves visible."""
        if self.own_prefetcher:
            return system.exposed_latency_decapf
        if self.reads_l2:
            return system.exposed_latency_l2pf
        return system.exposed_latency_none

    def handoff_cycles(self, system: SimSystem) -> float:
        """Decompressed-data path from the pipeline to a core tile register."""
        if self.tout_regs:
            return system.tout_read_latency
        return system.l2_latency + _L2_ROUNDTRIP_EXTRA


#: The cumulative ladder evaluated in Figure 17.
INTEGRATION_LADDER: Tuple[DecaIntegration, ...] = (
    DecaIntegration(False, False, False, False, label="Base"),
    DecaIntegration(True, False, False, False, label="+Reads L2"),
    DecaIntegration(True, True, False, False, label="+DECA prefetcher"),
    DecaIntegration(True, True, True, False, label="+TOut Regs"),
    DecaIntegration(True, True, True, True, label="+TEPL (DECA)"),
)

#: The full production configuration used everywhere else.
FULL_INTEGRATION = INTEGRATION_LADDER[-1]


def deca_kernel_timing(
    system: SimSystem,
    scheme: CompressionScheme,
    config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    dec_cycles: Optional[Union[float, Sequence[float]]] = None,
    bytes_per_tile: Optional[Union[float, Sequence[float]]] = None,
) -> KernelTiming:
    """Timing descriptor for a DECA-accelerated compressed GeMM.

    ``dec_cycles``/``bytes_per_tile`` default to the scheme's expected
    values; pass per-tile sequences (e.g. from
    :func:`repro.deca.timing.exact_dec_cycles`) for exact-workload runs.

    Default-argument calls are memoized: every input is a frozen
    value-hashable dataclass and the decompression-rate model behind
    ``deca_dec_cycles`` dominates construction, so repeated requests for
    the same configuration (a sweep's cells, the batched executor's
    seeding pass and the tasks behind it) share one ``KernelTiming``.
    """
    config = config if config is not None else DecaConfig()
    integration = integration if integration is not None else FULL_INTEGRATION
    if dec_cycles is None and bytes_per_tile is None:
        try:
            return _default_deca_kernel_timing(
                system, scheme, config, integration
            )
        except TypeError:
            # An unhashable axis value (e.g. a subclass carrying arrays)
            # simply skips the memo.
            pass
    return _build_deca_kernel_timing(
        system, scheme, config, integration, dec_cycles, bytes_per_tile
    )


@_functools.lru_cache(maxsize=256)
def _default_deca_kernel_timing(
    system: SimSystem,
    scheme: CompressionScheme,
    config: DecaConfig,
    integration: DecaIntegration,
) -> KernelTiming:
    """The memoized default-argument construction (frozen, shareable)."""
    return _build_deca_kernel_timing(
        system, scheme, config, integration, None, None
    )


def _build_deca_kernel_timing(
    system: SimSystem,
    scheme: CompressionScheme,
    config: DecaConfig,
    integration: DecaIntegration,
    dec_cycles: Optional[Union[float, Sequence[float]]],
    bytes_per_tile: Optional[Union[float, Sequence[float]]],
) -> KernelTiming:
    if dec_cycles is None:
        dec_cycles = deca_dec_cycles(config, scheme)
    if bytes_per_tile is None:
        bytes_per_tile = scheme.bytes_per_tile()
    if integration.tepl:
        mode = InvocationMode.TEPL
        invoke = system.tepl_issue_latency
        fence = 0.0
    else:
        mode = InvocationMode.SERIALIZED
        invoke = system.mmio_store_latency
        fence = system.fence_drain_cycles
    return KernelTiming(
        bytes_per_tile=bytes_per_tile,
        dec_cycles=dec_cycles,
        mtx_cycles=float(TMUL_CYCLES),
        mode=mode,
        handoff_cycles=integration.handoff_cycles(system),
        invoke_cycles=invoke,
        fence_cycles=fence,
        exposed_latency=integration.exposed_latency(system),
        prefetch_window=integration.prefetch_window,
        n_loaders=config.n_loaders,
        core_overhead_cycles=0.0,
        loader_latency_cycles=system.loader_fill_latency,
        demand_load_cap=None,
        dec_is_avx=False,
    )
