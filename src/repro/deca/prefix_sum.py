"""The Parallel Prefix Sum circuit of Figure 11, modelled gate-faithfully.

DECA derives the crossbar's expansion indices from the bitmask with a
parallel prefix network. This module implements a Kogge-Stone network the
way hardware would — log2(W) stages of conditional adders — and exposes
stage-by-stage intermediate values plus adder-count estimates, validating
both the functional shortcut in :mod:`repro.sparse.bitmask` and the area
model's "prefix sum is cheap next to the crossbar" assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.bitmask import expansion_indices


@dataclass(frozen=True)
class PrefixSumTrace:
    """Stage-by-stage values of one Kogge-Stone evaluation."""

    width: int
    stages: List[np.ndarray]  # stages[0] is the input bits as ints

    @property
    def inclusive(self) -> np.ndarray:
        """The final inclusive prefix sums."""
        return self.stages[-1]

    @property
    def exclusive(self) -> np.ndarray:
        """Exclusive prefix sums — DECA's crossbar routing indices."""
        return self.inclusive - self.stages[0]

    @property
    def depth(self) -> int:
        """Logic depth in adder stages (log2 of the width)."""
        return len(self.stages) - 1


class KoggeStonePrefixSum:
    """A W-lane Kogge-Stone prefix-sum network.

    Each of the ``ceil(log2 W)`` stages adds, in parallel, lane ``i - 2^s``
    into lane ``i`` for all lanes with ``i >= 2^s`` — the classic
    minimum-depth prefix network hardware uses when latency matters.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.width = width

    @property
    def stage_count(self) -> int:
        """Number of adder stages: ceil(log2(width))."""
        if self.width == 1:
            return 0
        return math.ceil(math.log2(self.width))

    def adder_count(self) -> int:
        """Total conditional adders: sum over stages of (W - 2^s)."""
        return sum(
            self.width - (1 << stage) for stage in range(self.stage_count)
        )

    def evaluate(self, bits: np.ndarray) -> PrefixSumTrace:
        """Run the network on a window of bitmask bits."""
        bits = np.ascontiguousarray(bits, dtype=bool).ravel()
        if bits.size != self.width:
            raise ConfigurationError(
                f"network is {self.width} lanes wide; got {bits.size} bits"
            )
        current = bits.astype(np.int64)
        stages = [current.copy()]
        for stage in range(self.stage_count):
            distance = 1 << stage
            nxt = current.copy()
            nxt[distance:] += current[:-distance]
            current = nxt
            stages.append(current.copy())
        return PrefixSumTrace(self.width, stages)

    def expansion_indices(self, bits: np.ndarray) -> np.ndarray:
        """Crossbar routing indices (exclusive scan) via the network.

        Equal, by construction, to the software shortcut
        :func:`repro.sparse.bitmask.expansion_indices` — asserted by the
        property tests.
        """
        return self.evaluate(bits).exclusive

    def matches_reference(self, bits: np.ndarray) -> bool:
        """Cross-check the network against the numpy cumsum shortcut."""
        return bool(
            np.array_equal(
                self.expansion_indices(bits), expansion_indices(bits)
            )
        )
