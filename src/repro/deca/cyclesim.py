"""Cycle-accurate DECA PE scheduler: two Loaders sharing one pipeline.

The tile-level models charge each tile a lump of pipeline cycles; this
module simulates the PE at vOp granularity instead (Figure 8's double
buffering played out cycle by cycle): two Loaders alternately own tiles,
the single dequantization stage accepts one vOp per cycle when its window
fits the LUT ports (stalling otherwise), and the expansion/scaling stages
drain behind it. It produces per-cycle occupancy, validating that the
lump-sum ``dec_cycles`` used by the fast simulator equals what the
pipeline actually does — including across back-to-back tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.deca.config import DecaConfig
from repro.deca.crossbar import split_windows
from repro.errors import ConfigurationError
from repro.sparse.tile import CompressedTile


@dataclass(frozen=True)
class VopEvent:
    """One vOp's passage through the pipeline."""

    tile_index: int
    vop_index: int
    loader_id: int
    window: int
    dequant_start: int
    dequant_cycles: int

    @property
    def dequant_end(self) -> int:
        """Cycle after the vOp leaves the dequantization stage."""
        return self.dequant_start + self.dequant_cycles


@dataclass(frozen=True)
class CycleSimResult:
    """Outcome of a cycle-accurate multi-tile PE run."""

    events: Tuple[VopEvent, ...]
    tile_done_cycles: Tuple[int, ...]
    total_cycles: int
    #: Per-tile dequant-stage occupancy, precomputed by the simulator so
    #: per-tile queries need not rescan every event (``None`` only for
    #: results built by hand without the sums).
    tile_dequant_cycles: Optional[Tuple[int, ...]] = None

    def tile_pipeline_cycles(self, tile_index: int) -> int:
        """Dequant-stage occupancy of one tile (sum over its vOps).

        O(1) against the precomputed per-tile sums; validating a whole
        run is linear in tiles instead of tiles x events.
        """
        if (
            self.tile_dequant_cycles is not None
            and 0 <= tile_index < len(self.tile_dequant_cycles)
        ):
            return self.tile_dequant_cycles[tile_index]
        return sum(
            e.dequant_cycles
            for e in self.events
            if e.tile_index == tile_index
        )

    def stage_utilization(self) -> float:
        """Fraction of cycles the dequantization stage was occupied."""
        if self.total_cycles == 0:
            return 0.0
        if self.tile_dequant_cycles is not None:
            busy = sum(self.tile_dequant_cycles)
        else:
            busy = sum(e.dequant_cycles for e in self.events)
        return min(1.0, busy / self.total_cycles)


def simulate_pe_cycles(
    config: DecaConfig,
    tiles: Sequence[CompressedTile],
    drain_stages: bool = True,
) -> CycleSimResult:
    """Run a tile sequence through the PE at vOp granularity.

    Tiles alternate between the Loaders; vOps of one tile flow in order,
    and a new tile's first vOp may enter the cycle after the previous
    tile's last vOp left the dequantization stage (the two TOut registers
    make the downstream stages conflict-free between alternating tiles).
    """
    if not tiles:
        raise ConfigurationError("need at least one tile to simulate")
    format_name = tiles[0].format_name
    for tile in tiles:
        if tile.format_name != format_name:
            raise ConfigurationError(
                "all tiles in one run must share a format (one PE "
                "configuration)"
            )
    bits = min(tiles[0].fmt.bits, 8)
    uses_lut = tiles[0].fmt.lut_supported
    events: List[VopEvent] = []
    tile_done: List[int] = []
    tile_sums: List[int] = []
    cycle = 0
    for tile_index, tile in enumerate(tiles):
        mask = tile.dense_mask().ravel()
        windows, _starts = split_windows(mask, config.width)
        loader_id = tile_index % config.n_loaders
        # All of this tile's vOp start cycles in one cumulative pass: each
        # window occupies ceil(window / Lq) dequant cycles (min 1), so the
        # starts are the exclusive prefix sum of the per-window costs.
        if uses_lut:
            cycles_per_vop = config.dequant_cycles_for_windows(windows, bits)
        else:
            cycles_per_vop = np.ones(len(windows), dtype=np.int64)
        ends = np.cumsum(cycles_per_vop)
        starts = cycle + ends - cycles_per_vop
        events.extend(
            VopEvent(
                tile_index=tile_index,
                vop_index=vop_index,
                loader_id=loader_id,
                window=int(window),
                dequant_start=int(start),
                dequant_cycles=int(cycles),
            )
            for vop_index, (window, start, cycles) in enumerate(
                zip(windows, starts, cycles_per_vop)
            )
        )
        cycle += int(ends[-1])
        tile_sums.append(int(ends[-1]))
        tile_done.append(
            cycle + (config.pipeline_stages - 1 if drain_stages else 0)
        )
    total = tile_done[-1] if drain_stages else cycle
    return CycleSimResult(
        events=tuple(events),
        tile_done_cycles=tuple(tile_done),
        total_cycles=total,
        tile_dequant_cycles=tuple(tile_sums),
    )


def validate_against_tile_model(
    config: DecaConfig, tiles: Sequence[CompressedTile]
) -> bool:
    """Check the vOp-level run against the per-tile lump-sum model.

    The fast simulator charges each tile ``sum(ceil(window/Lq))`` cycles;
    the cycle-accurate run must account exactly the same occupancy.
    """
    from repro.deca.pipeline import DecaPipeline

    result = simulate_pe_cycles(config, tiles)
    pipeline = DecaPipeline(config)
    pipeline.configure(tiles[0].format_name)
    for index, tile in enumerate(tiles):
        _out, stats = pipeline.decompress_tile(tile)
        if result.tile_pipeline_cycles(index) != stats.dequant_cycles:
            return False
    return True


def occupancy_histogram(result: CycleSimResult) -> np.ndarray:
    """Histogram of dequant cycles per vOp (1 = no bubble, k = k-1 bubbles)."""
    counts = np.bincount(
        [event.dequant_cycles for event in result.events]
    )
    return counts
