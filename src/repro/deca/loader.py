"""DECA Loaders: the memory front end of a PE (Figure 11, left).

Each Loader owns a load queue (LDQ), a prefetcher, and three input queues
that receive the tile's data structures as cache lines arrive: the Sparse
Quantized Queue (codes), the Bitmask Queue, and the Scale Factor Queue.
Two Loaders per PE enable the double buffering of Figure 8.

The functional model tracks queue occupancies and fetched byte counts —
the quantities the timing model and area model consume — without
simulating an address space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.sparse.tile import CompressedTile


@dataclass
class LoaderQueues:
    """Occupancy of one Loader's three input queues (bytes)."""

    sqq_capacity: int
    sqq_bytes: int = 0
    bitmask_bytes: int = 0
    scale_bytes: int = 0

    def fill(self, sqq: int, bitmask: int, scales: int) -> None:
        """Deposit a tile's structures into the queues.

        The SQQ streams: the pipeline drains it while the Loader refills,
        so its capacity bounds the instantaneous occupancy, not the tile's
        total code bytes.
        """
        if sqq < 0 or bitmask < 0 or scales < 0:
            raise SimulationError("queue deposits must be non-negative")
        self.sqq_bytes = min(sqq, self.sqq_capacity)
        self.bitmask_bytes = bitmask
        self.scale_bytes = scales

    def drain(self) -> None:
        """Consume the queued tile (the pipeline has read it)."""
        self.sqq_bytes = 0
        self.bitmask_bytes = 0
        self.scale_bytes = 0


@dataclass
class TileMetadata:
    """The invocation metadata a core writes to a Loader (Section 5.2).

    Base addresses and lengths of the three data structures; the simulator
    carries the tile object itself in lieu of an address space.
    """

    codes_bytes: int
    bitmask_bytes: int
    scale_bytes: int
    tile: Optional[CompressedTile] = None

    @classmethod
    def for_tile(cls, tile: CompressedTile) -> "TileMetadata":
        """Build metadata describing a compressed tile."""
        codes_bytes = math.ceil(tile.nnz * tile.fmt.bits / 8)
        bitmask_bytes = 0 if tile.bitmask is None else int(tile.bitmask.size)
        scale_bytes = (
            0
            if tile.scale_bits is None
            else math.ceil(tile.scale_bits.size * tile.fmt.scale_bits / 8)
        )
        return cls(codes_bytes, bitmask_bytes, scale_bytes, tile)

    @property
    def total_bytes(self) -> int:
        """Bytes the Loader must fetch for this tile."""
        return self.codes_bytes + self.bitmask_bytes + self.scale_bytes


@dataclass
class PrefetcherState:
    """DECA's tile prefetcher: predicts future tiles from observed strides.

    The PF watches the metadata stream; after two tiles it locks onto the
    stride and issues prefetches ``depth`` tiles ahead, dynamically scaled
    by the aggressiveness knob (Section 6.1: it targets high L2 MSHR
    occupancy).
    """

    depth: int = 24
    last_total: Optional[int] = None
    locked: bool = False
    issued_prefetches: int = 0

    def observe(self, metadata: TileMetadata) -> int:
        """Record a tile fetch; returns prefetches issued for future tiles."""
        if self.last_total is not None and metadata.total_bytes > 0:
            self.locked = True
        self.last_total = metadata.total_bytes
        issued = self.depth if self.locked else 0
        self.issued_prefetches += issued
        return issued


@dataclass
class Loader:
    """One Loader: LDQ + prefetcher + input queues."""

    loader_id: int
    sqq_capacity: int = 256
    queues: LoaderQueues = field(init=False)
    prefetcher: PrefetcherState = field(default_factory=PrefetcherState)
    busy: bool = False
    fetched_bytes: int = 0
    tiles_loaded: int = 0

    def __post_init__(self) -> None:
        self.queues = LoaderQueues(sqq_capacity=self.sqq_capacity)

    def begin_fetch(self, metadata: TileMetadata) -> None:
        """Accept an invocation: mark the Loader busy and fill queues."""
        if self.busy:
            raise SimulationError(
                f"Loader {self.loader_id} is busy; the TEPL structural "
                "hazard should have prevented this invocation"
            )
        self.busy = True
        self.prefetcher.observe(metadata)
        self.queues.fill(
            metadata.codes_bytes, metadata.bitmask_bytes, metadata.scale_bytes
        )
        self.fetched_bytes += metadata.total_bytes
        self.tiles_loaded += 1

    def complete(self) -> None:
        """The pipeline consumed the tile; the Loader is free again."""
        if not self.busy:
            raise SimulationError(
                f"Loader {self.loader_id} completed without a fetch in flight"
            )
        self.queues.drain()
        self.busy = False

    def squash(self) -> None:
        """Abort an in-flight fetch (core pipeline flush, Section 5.3)."""
        self.queues.drain()
        self.busy = False
