"""Evaluation-model inventories: Llama2-70B and OPT-66B.

Only the fully connected layers matter for the compressed-GeMM analysis
(Section 3.1); attention score computation, softmax, normalisation etc.
are captured by the calibrated non-GeMM term in ``inference``. The layer
shapes below follow the published architectures:

* Llama2-70B: 80 decoder blocks, hidden 8192, grouped-query attention with
  8 KV heads (KV projections 8192 -> 1024), SwiGLU MLP with intermediate
  28672, vocabulary 32000.
* OPT-66B: 64 decoder blocks, hidden 9216, full multi-head attention,
  4x-hidden ReLU MLP, vocabulary 50272.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.kernels.parlooper import tiles_for_matrix


@dataclass(frozen=True)
class FcLayer:
    """One fully connected layer: output features x input features.

    The weight matrix is (out_features, in_features); a GeMM reads it once
    per generated token.
    """

    name: str
    out_features: int
    in_features: int

    def __post_init__(self) -> None:
        if self.out_features < 1 or self.in_features < 1:
            raise ConfigurationError(
                f"layer {self.name!r} has non-positive dimensions"
            )

    @property
    def params(self) -> int:
        """Weight count of this layer."""
        return self.out_features * self.in_features

    @property
    def tiles(self) -> int:
        """Number of 16x32 weight tiles in this layer."""
        return tiles_for_matrix(self.out_features, self.in_features)


@dataclass(frozen=True)
class LlmConfig:
    """A decoder-only LLM described by its FC-layer inventory."""

    name: str
    hidden: int
    blocks: int
    block_layers: Tuple[FcLayer, ...]
    head_layers: Tuple[FcLayer, ...]  # applied once per token (lm_head)

    @property
    def fc_params(self) -> int:
        """Total FC weights across all blocks plus the head."""
        per_block = sum(layer.params for layer in self.block_layers)
        head = sum(layer.params for layer in self.head_layers)
        return per_block * self.blocks + head

    @property
    def fc_tiles(self) -> int:
        """Total weight tiles read per generated token."""
        per_block = sum(layer.tiles for layer in self.block_layers)
        head = sum(layer.tiles for layer in self.head_layers)
        return per_block * self.blocks + head

    def fc_bytes_bf16(self) -> int:
        """Uncompressed BF16 footprint of the FC weights."""
        return self.fc_params * 2


def llama2_70b() -> LlmConfig:
    """Llama2-70B (grouped-query attention, SwiGLU MLP)."""
    hidden = 8192
    kv_dim = 1024  # 8 KV heads x 128 head dim
    intermediate = 28672
    block = (
        FcLayer("q_proj", hidden, hidden),
        FcLayer("k_proj", kv_dim, hidden),
        FcLayer("v_proj", kv_dim, hidden),
        FcLayer("o_proj", hidden, hidden),
        FcLayer("gate_proj", intermediate, hidden),
        FcLayer("up_proj", intermediate, hidden),
        FcLayer("down_proj", hidden, intermediate),
    )
    head = (FcLayer("lm_head", 32000, hidden),)
    return LlmConfig(
        name="Llama2-70B",
        hidden=hidden,
        blocks=80,
        block_layers=block,
        head_layers=head,
    )


def opt_66b() -> LlmConfig:
    """OPT-66B (full attention, 4x-hidden MLP)."""
    hidden = 9216
    intermediate = 4 * hidden
    block = (
        FcLayer("q_proj", hidden, hidden),
        FcLayer("k_proj", hidden, hidden),
        FcLayer("v_proj", hidden, hidden),
        FcLayer("o_proj", hidden, hidden),
        FcLayer("fc1", intermediate, hidden),
        FcLayer("fc2", hidden, intermediate),
    )
    # OPT's vocabulary is 50272; the embedding width is padded to a tile
    # multiple for the GeMM (50272 = 1571 x 32, already a multiple of 16).
    head = (FcLayer("lm_head", 50272, hidden),)
    return LlmConfig(
        name="OPT-66B",
        hidden=hidden,
        blocks=64,
        block_layers=block,
        head_layers=head,
    )
