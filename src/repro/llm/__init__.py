"""LLM inference substrate: model inventories and next-token latency.

Provides exact fully-connected-layer inventories for the paper's two
evaluation models (Llama2-70B and OPT-66B), and the next-token latency
model that combines simulated FC-GeMM time with a calibrated non-GeMM
component (attention, normalisation, softmax — kernels weight compression
does not apply to).
"""

from repro.llm.models import (
    FcLayer,
    LlmConfig,
    llama2_70b,
    opt_66b,
)
from repro.llm.inference import (
    EngineKind,
    LayerTime,
    NextTokenBreakdown,
    layer_breakdown,
    next_token_latency,
    non_gemm_seconds,
)
from repro.llm.prompt import (
    PromptBreakdown,
    RequestLatency,
    prompt_latency,
    request_latency,
)
from repro.llm.accuracy import (
    FidelityReport,
    fidelity_sweep,
    gemm_relative_error,
    weight_sqnr_db,
)

__all__ = [
    "FcLayer",
    "LlmConfig",
    "llama2_70b",
    "opt_66b",
    "EngineKind",
    "LayerTime",
    "NextTokenBreakdown",
    "layer_breakdown",
    "next_token_latency",
    "non_gemm_seconds",
    "PromptBreakdown",
    "RequestLatency",
    "prompt_latency",
    "request_latency",
    "FidelityReport",
    "fidelity_sweep",
    "gemm_relative_error",
    "weight_sqnr_db",
]
