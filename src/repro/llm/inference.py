"""Next-token latency model (Tables 1 and 4).

Next-token time = FC-GeMM time + non-GeMM time. The GeMM component comes
from the tile-stream simulator: total weight tiles are Parlooper-distributed
across the cores and each core's stream is simulated with the appropriate
kernel timing (software, DECA, or the uncompressed baseline). The non-GeMM
component covers attention score/softmax, normalisation, rotary embeddings
and framework overhead — work that weight compression does not touch.

GeMM time additionally carries a small per-tile activation-handling cost
that grows with the batch: each TMUL operation needs its N-row activation
tile staged into a tile register (and the output strip written back),
serial work on the core's load/store path of about 0.75 cycles per
activation row per weight tile.

The non-GeMM term is calibrated against the paper's Table 1 GeMM-time
fractions for Llama2-70B on HBM (see DESIGN.md): in milliseconds,

    non_gemm_ms = (19.5 + 0.111 * N + 0.0034 * N * T + 0.00285 * T) * s

with batch size N, input-token count T, and a model-size factor
``s = (blocks * hidden) / (80 * 8192)`` that transfers the calibration to
OPT-66B. The same constants reproduce the DDR fractions to within ~1
percentage point, consistent with the paper's observation that non-GeMM
time is nearly memory-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.schemes import CompressionScheme, UNCOMPRESSED
from repro.deca.config import DecaConfig
from repro.deca.integration import DecaIntegration, deca_kernel_timing
from repro.errors import ConfigurationError
from repro.kernels.avx import AvxVariant
from repro.kernels.libxsmm import (
    software_kernel_timing,
    uncompressed_kernel_timing,
)
from repro.kernels.parlooper import max_tiles_per_core
from repro.llm.models import LlmConfig
from repro.sim.pipeline import simulate_tile_stream
from repro.sim.system import SimSystem

# Calibration constants (milliseconds) for the non-GeMM component of
# Llama2-70B, fitted to Table 1 (see module docstring).
_NG_BASE_MS = 19.5
_NG_PER_BATCH_MS = 0.111
_NG_PER_BATCH_TOKEN_MS = 0.0034
_NG_PER_TOKEN_MS = 0.00285
_NG_REFERENCE_SIZE = 80 * 8192  # Llama2-70B blocks x hidden

#: Serial activation-staging cycles per weight tile per activation row.
_ACT_CYCLES_PER_ROW = 0.75


class EngineKind(enum.Enum):
    """Who decompresses the weight tiles."""

    UNCOMPRESSED = "uncompressed"
    SOFTWARE = "software"
    DECA = "deca"


@dataclass(frozen=True)
class NextTokenBreakdown:
    """Next-token latency split into its two components (seconds)."""

    model_name: str
    scheme_name: str
    engine: EngineKind
    batch: int
    input_tokens: int
    gemm_seconds: float
    non_gemm_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end next-token latency."""
        return self.gemm_seconds + self.non_gemm_seconds

    @property
    def total_ms(self) -> float:
        """End-to-end latency in milliseconds (Table 4's unit)."""
        return self.total_seconds * 1e3

    @property
    def gemm_fraction(self) -> float:
        """Fraction of next-token time spent in FC GeMMs (Table 1)."""
        return self.gemm_seconds / self.total_seconds


def non_gemm_seconds(
    model: LlmConfig, batch: int, input_tokens: int
) -> float:
    """Calibrated non-GeMM time per generated token."""
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    if input_tokens < 1:
        raise ConfigurationError(
            f"input_tokens must be >= 1, got {input_tokens}"
        )
    scale = (model.blocks * model.hidden) / _NG_REFERENCE_SIZE
    ms = scale * (
        _NG_BASE_MS
        + _NG_PER_BATCH_MS * batch
        + _NG_PER_BATCH_TOKEN_MS * batch * input_tokens
        + _NG_PER_TOKEN_MS * input_tokens
    )
    return ms * 1e-3


def fc_gemm_seconds(
    model: LlmConfig,
    system: SimSystem,
    scheme: CompressionScheme,
    engine: EngineKind,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    avx_variant: AvxVariant = AvxVariant.BASELINE,
    batch: int = 1,
    sample_tiles: int = 400,
    use_cache: bool = True,
) -> float:
    """Simulated time to execute all FC GeMMs for one generated token.

    The busiest core's tile count (Parlooper block distribution) sets the
    critical path; its stream is simulated for ``sample_tiles`` tiles and
    extrapolated to the full per-token tile count. ``batch`` adds the
    activation-staging cost to the core/TMUL chain.

    The simulation goes through the memoized tile-stream front door
    (:mod:`repro.sim.cache`), so the Table 1/4 harnesses — which revisit
    the same (model, system, scheme, engine, batch) combinations across
    rows — pay for each distinct stream once.
    """
    if engine is EngineKind.UNCOMPRESSED:
        timing = uncompressed_kernel_timing(system)
    elif engine is EngineKind.SOFTWARE:
        timing = software_kernel_timing(system, scheme, variant=avx_variant)
    else:
        timing = deca_kernel_timing(
            system, scheme, config=deca_config, integration=integration
        )
    act_cycles = _ACT_CYCLES_PER_ROW * min(batch, 16)
    if engine is EngineKind.SOFTWARE:
        # The same core stages activations and runs the AVX sequence.
        timing = replace(
            timing,
            core_overhead_cycles=timing.core_overhead_cycles + act_cycles,
        )
    else:
        timing = replace(timing, mtx_cycles=timing.mtx_cycles + act_cycles)
    result = simulate_tile_stream(
        system, timing, tiles=sample_tiles, use_cache=use_cache
    )
    per_core = max_tiles_per_core(model.fc_tiles, system.cores)
    return result.seconds_for(per_core)


def next_token_latency(
    model: LlmConfig,
    system: SimSystem,
    scheme: CompressionScheme = UNCOMPRESSED,
    engine: EngineKind = EngineKind.UNCOMPRESSED,
    batch: int = 1,
    input_tokens: int = 128,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
    avx_variant: AvxVariant = AvxVariant.BASELINE,
) -> NextTokenBreakdown:
    """Full next-token latency for a model / scheme / engine combination.

    Mirrors the paper's Table 4 setup: 128 input tokens by default, batch
    sizes 1-16, with the uncompressed BF16 model simulated as if it fit in
    HBM (the paper assumes a larger HBM for that baseline).
    """
    if engine is EngineKind.UNCOMPRESSED and scheme.name != UNCOMPRESSED.name:
        raise ConfigurationError(
            "the uncompressed engine only runs the BF16 baseline scheme"
        )
    gemm = fc_gemm_seconds(
        model,
        system,
        scheme,
        engine,
        deca_config=deca_config,
        integration=integration,
        avx_variant=avx_variant,
        batch=batch,
    )
    return NextTokenBreakdown(
        model_name=model.name,
        scheme_name=scheme.name,
        engine=engine,
        batch=batch,
        input_tokens=input_tokens,
        gemm_seconds=gemm,
        non_gemm_seconds=non_gemm_seconds(model, batch, input_tokens),
    )


@dataclass(frozen=True)
class LayerTime:
    """Per-layer GeMM time within one generated token."""

    layer_name: str
    instances: int
    tiles: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        """Time in ms across all instances of this layer."""
        return self.seconds * 1e3


def layer_breakdown(
    model: LlmConfig,
    system: SimSystem,
    scheme: CompressionScheme,
    engine: EngineKind,
    batch: int = 1,
) -> list:
    """Per-layer-type FC GeMM time for one generated token.

    Every layer's tiles flow through the same kernel, so time divides
    proportionally to tile counts; the result names where the milliseconds
    go (e.g. Llama2's MLP dominates its attention projections ~5:1).
    """
    total_seconds = fc_gemm_seconds(
        model, system, scheme, engine, batch=batch
    )
    rows = []
    per_token_tiles = model.fc_tiles
    for layer in model.block_layers:
        tiles = layer.tiles * model.blocks
        rows.append(
            LayerTime(
                layer_name=layer.name,
                instances=model.blocks,
                tiles=tiles,
                seconds=total_seconds * tiles / per_token_tiles,
            )
        )
    for layer in model.head_layers:
        rows.append(
            LayerTime(
                layer_name=layer.name,
                instances=1,
                tiles=layer.tiles,
                seconds=total_seconds * layer.tiles / per_token_tiles,
            )
        )
    return rows
