"""Prompt-phase and end-to-end request latency (Section 2.1).

The paper optimises the generation phase because it dominates practical
serving, but a complete inference story needs the prompt phase too: all T
input tokens pass through every layer in one batch, so the FC GeMMs run
at high arithmetic intensity (weights are reused T times) and become
compute-bound on the TMUL rather than memory-bound.

``prompt_latency`` models that: tile operations = weight-tiles x
ceil(T/16) activation-row blocks, bounded below by one full weight sweep
from memory; attention adds the quadratic-in-T score/softmax work.
``request_latency`` composes it with the next-token model into the full
time-to-last-token.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.schemes import CompressionScheme, UNCOMPRESSED
from repro.deca.config import DecaConfig
from repro.deca.integration import DecaIntegration
from repro.errors import ConfigurationError
from repro.llm.inference import EngineKind, next_token_latency
from repro.llm.models import LlmConfig
from repro.sim.pipeline import DRAM_EFFICIENCY
from repro.sim.system import SimSystem
from repro.units import TILE_ROWS

#: Attention score+softmax FMAs per (layer, token-pair, head-dim) unit,
#: folded into one constant: 2 GeMMs (QK^T and PV) plus softmax overhead.
_ATTN_FLOPS_FACTOR = 2.5
#: Fraction of TMUL peak the prompt phase sustains (tiling/sync losses).
_PROMPT_COMPUTE_EFFICIENCY = 0.85


@dataclass(frozen=True)
class PromptBreakdown:
    """Prompt-phase latency components (seconds)."""

    model_name: str
    input_tokens: int
    fc_seconds: float
    attention_seconds: float

    @property
    def total_seconds(self) -> float:
        """Prompt-phase latency."""
        return self.fc_seconds + self.attention_seconds

    @property
    def total_ms(self) -> float:
        """Prompt-phase latency in milliseconds."""
        return self.total_seconds * 1e3


@dataclass(frozen=True)
class RequestLatency:
    """End-to-end request: prompt plus generated tokens."""

    prompt: PromptBreakdown
    per_token_seconds: float
    output_tokens: int

    @property
    def generation_seconds(self) -> float:
        """Total generation-phase time."""
        return self.per_token_seconds * self.output_tokens

    @property
    def total_seconds(self) -> float:
        """Time to the last generated token."""
        return self.prompt.total_seconds + self.generation_seconds

    @property
    def tokens_per_second(self) -> float:
        """Steady-state generation throughput."""
        return 1.0 / self.per_token_seconds


def prompt_latency(
    model: LlmConfig,
    system: SimSystem,
    scheme: CompressionScheme = UNCOMPRESSED,
    input_tokens: int = 128,
) -> PromptBreakdown:
    """Prompt-phase latency for ``input_tokens`` tokens.

    FC GeMMs: every weight tile is multiplied against ``ceil(T/16)``
    activation-row blocks; compute time is that tile-op count over the
    TMUL rate (derated by a tiling-efficiency factor), floored by one
    sweep of the compressed weights from memory. Decompression is charged
    once per weight tile but is amortised over the row blocks, so the
    prompt phase is insensitive to the engine — the paper's reason to
    focus on generation.
    """
    if input_tokens < 1:
        raise ConfigurationError(
            f"input_tokens must be >= 1, got {input_tokens}"
        )
    row_blocks = math.ceil(input_tokens / TILE_ROWS)
    tile_ops = model.fc_tiles * row_blocks
    compute_rate = (
        system.machine.matrix_ops_per_second * _PROMPT_COMPUTE_EFFICIENCY
    )
    compute_seconds = tile_ops / compute_rate
    weight_bytes = model.fc_tiles * scheme.bytes_per_tile()
    memory_seconds = weight_bytes / (
        system.machine.memory_bandwidth * DRAM_EFFICIENCY
    )
    fc_seconds = max(compute_seconds, memory_seconds)
    # Attention scores/softmax/PV: ~T^2 x hidden FMAs per layer.
    attn_flops = (
        _ATTN_FLOPS_FACTOR * model.blocks * input_tokens**2 * model.hidden
    )
    attn_seconds = attn_flops / (
        system.machine.matrix_ops_per_second
        * 512.0
        * TILE_ROWS
        * _PROMPT_COMPUTE_EFFICIENCY
    )
    return PromptBreakdown(
        model_name=model.name,
        input_tokens=input_tokens,
        fc_seconds=fc_seconds,
        attention_seconds=attn_seconds,
    )


def request_latency(
    model: LlmConfig,
    system: SimSystem,
    scheme: CompressionScheme = UNCOMPRESSED,
    engine: EngineKind = EngineKind.UNCOMPRESSED,
    input_tokens: int = 128,
    output_tokens: int = 128,
    batch: int = 1,
    deca_config: Optional[DecaConfig] = None,
    integration: Optional[DecaIntegration] = None,
) -> RequestLatency:
    """Full request latency: prompt phase plus ``output_tokens`` steps."""
    if output_tokens < 1:
        raise ConfigurationError(
            f"output_tokens must be >= 1, got {output_tokens}"
        )
    prompt = prompt_latency(model, system, scheme, input_tokens)
    token = next_token_latency(
        model,
        system,
        scheme,
        engine,
        batch=batch,
        input_tokens=input_tokens,
        deca_config=deca_config,
        integration=integration,
    )
    return RequestLatency(
        prompt=prompt,
        per_token_seconds=token.total_seconds,
        output_tokens=output_tokens,
    )
