"""Numerical-fidelity analysis of the compression schemes.

The paper leans on external results for model quality (MXFP4 "has been
shown to not degrade LLM accuracy", SparseGPT reaches 60-70% sparsity
"without significant loss"). This module provides the quantitative
counterpart the library can measure directly:

* per-scheme weight SQNR (signal-to-quantization-noise ratio), and
* end-to-end GeMM output error against an FP32 reference,

on synthetic Gaussian weights — the distribution trained FC layers
approximate. These metrics order the schemes exactly as the accuracy
literature does (BF16 > BF8 ~ INT4-grouped > MXFP4, with pruning noise on
top), which is what the reproduction can credibly verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.schemes import CompressionScheme
from repro.errors import ConfigurationError
from repro.kernels.gemm import compressed_gemm_reference
from repro.sparse.compress import compress_matrix, decompress_matrix


@dataclass(frozen=True)
class FidelityReport:
    """Numerical fidelity of one scheme on a synthetic weight matrix."""

    scheme_name: str
    weight_sqnr_db: float
    gemm_relative_error: float

    def summary(self) -> str:
        """One-line report row."""
        return (
            f"{self.scheme_name}: SQNR {self.weight_sqnr_db:.1f} dB, "
            f"GeMM rel. error {self.gemm_relative_error:.4f}"
        )


def weight_sqnr_db(
    scheme: CompressionScheme,
    weights: np.ndarray,
    against_pruned: bool = True,
) -> float:
    """SQNR (dB) of storing ``weights`` under a scheme.

    ``against_pruned`` compares against the *pruned* reference (isolating
    quantization noise); pass ``False`` to charge pruning loss as noise
    too.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float32)
    matrix = compress_matrix(weights, scheme.format_name, scheme.density)
    restored = decompress_matrix(matrix)
    if against_pruned:
        reference = np.where(restored != 0, weights, 0.0)
    else:
        reference = weights
    noise = restored - reference
    signal_power = float(np.mean(reference.astype(np.float64) ** 2))
    noise_power = float(np.mean(noise.astype(np.float64) ** 2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        raise ConfigurationError("cannot compute SQNR of an all-zero matrix")
    return float(10.0 * np.log10(signal_power / noise_power))


def gemm_relative_error(
    scheme: CompressionScheme,
    weights: np.ndarray,
    activations: np.ndarray,
) -> float:
    """Relative L2 error of the compressed GeMM vs the FP32 product.

    Pruning is part of the model here (the compressed model *is* the
    model), so the reference is the full-precision dense product.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float32)
    activations = np.ascontiguousarray(activations, dtype=np.float32)
    matrix = compress_matrix(weights, scheme.format_name, scheme.density)
    approx = compressed_gemm_reference(activations, matrix)
    exact = activations.astype(np.float64) @ weights.astype(np.float64).T
    error = np.linalg.norm(approx - exact) / (np.linalg.norm(exact) + 1e-30)
    return float(error)


def fidelity_sweep(
    schemes: Sequence[CompressionScheme],
    rows: int = 256,
    cols: int = 256,
    batch: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> list:
    """Fidelity reports for several schemes on one synthetic layer."""
    rng = rng if rng is not None else np.random.default_rng(0)
    weights = (rng.normal(scale=0.05, size=(rows, cols))).astype(np.float32)
    activations = rng.normal(size=(batch, cols)).astype(np.float32)
    reports = []
    for scheme in schemes:
        reports.append(
            FidelityReport(
                scheme_name=scheme.name,
                weight_sqnr_db=weight_sqnr_db(scheme, weights),
                gemm_relative_error=gemm_relative_error(
                    scheme, weights, activations
                ),
            )
        )
    return reports
