"""ISA-level models: AMX tile operations and the TEPL extension.

``amx`` provides the functional semantics of the tile register file and
the TLoad/TStore/TComp instructions; ``tepl`` implements the Tile External
Preprocess & Load instruction (Section 5.3) with its two-loader structural
hazard and speculative squash behaviour; ``program`` offers a small
instruction-stream builder plus interpreter that executes compressed GeMMs
end to end through these models.
"""

from repro.isa.amx import TileRegisterFile, tile_compute, tile_load
from repro.isa.tepl import TeplUnit, TeplInstruction
from repro.isa.program import (
    GemmProgram,
    ProgramResult,
    build_software_gemm,
    build_tepl_gemm,
    run_program,
)

__all__ = [
    "TileRegisterFile",
    "tile_compute",
    "tile_load",
    "TeplUnit",
    "TeplInstruction",
    "GemmProgram",
    "ProgramResult",
    "build_software_gemm",
    "build_tepl_gemm",
    "run_program",
]
