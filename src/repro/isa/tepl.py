"""TEPL: Tile External Preprocess and Load (Section 5.3).

A TEPL instruction hands tile metadata to a DECA Loader, waits for the
decompressed tile, and deposits it directly into a core tile register —
fusing the store + fence + tload sequence of Figure 9 into one renamable,
speculatively executable instruction. At most ``n_loaders`` TEPLs may be
in flight (the structural hazard); a pipeline flush squashes outstanding
TEPLs, which is always safe because DECA never writes memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.deca.pe import DecaPE
from repro.errors import ProgramError
from repro.isa.amx import TileRegisterFile
from repro.sparse.tile import CompressedTile


@dataclass(frozen=True)
class TeplInstruction:
    """One TEPL: tile metadata source plus a destination tile register."""

    tile: CompressedTile
    dest_register: int


@dataclass
class TeplUnit:
    """The core-side TEPL queue and execution ports.

    Functional model: ``issue`` starts a TEPL (enforcing the structural
    hazard), ``complete_oldest`` retires it into the register file. The
    timing consequences of the hazard live in the pipeline simulator; this
    class guarantees the architectural rules.
    """

    pe: DecaPE
    regs: TileRegisterFile
    in_flight: List[TeplInstruction] = field(default_factory=list)
    issued_total: int = 0
    squashed_total: int = 0

    @property
    def ports(self) -> int:
        """Execution ports — one per DECA Loader."""
        return self.pe.config.n_loaders

    def can_issue(self) -> bool:
        """Whether a TEPL may issue (a Loader port is free)."""
        return len(self.in_flight) < self.ports

    def issue(self, instruction: TeplInstruction) -> None:
        """Issue a TEPL; raises on a structural-hazard violation."""
        if not self.can_issue():
            raise ProgramError(
                f"structural hazard: {self.ports} TEPLs already in flight"
            )
        self.in_flight.append(instruction)
        self.issued_total += 1

    def complete_oldest(self) -> Optional[TeplInstruction]:
        """Retire the oldest in-flight TEPL: decompress and load the tile."""
        if not self.in_flight:
            return None
        instruction = self.in_flight.pop(0)
        tout_index, _stats = self.pe.process_tile(instruction.tile)
        self.regs.write(instruction.dest_register, self.pe.read_tout(tout_index))
        return instruction

    def drain(self) -> int:
        """Complete every in-flight TEPL; returns how many retired."""
        count = 0
        while self.in_flight:
            self.complete_oldest()
            count += 1
        return count

    def squash(self) -> int:
        """Pipeline flush: abort all outstanding TEPLs (always safe).

        The core may reissue the same TEPLs afterwards; no memory state
        was modified. Returns the number of squashed instructions.
        """
        squashed = len(self.in_flight)
        self.in_flight.clear()
        self.pe.squash()
        self.squashed_total += squashed
        return squashed
