"""Instruction-stream builder and interpreter for compressed GeMMs.

Ties the ISA models together: a :class:`GemmProgram` is the explicit
instruction sequence a libxsmm-style JIT would emit — either the software
variant (AVX decompression modelled by the reference decompressor feeding
TLoads) or the TEPL variant of Figure 10 (TEPL + TComp pairs, with the
structural hazard exercised for real). Running either program produces
numerically identical results, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.deca.pe import DecaPE
from repro.errors import ProgramError
from repro.formats.bfloat import bf16_round
from repro.isa.amx import TileRegisterFile, tile_compute
from repro.isa.tepl import TeplInstruction, TeplUnit
from repro.sparse.compress import CompressedMatrix
from repro.units import TILE_COLS_BF16, TILE_ROWS

# Register allocation mirroring the paper's pseudocode: two rotating
# weight registers (renamed TReg1), one activation register, one
# accumulator (TReg2).
_WEIGHT_REGS = (0, 1)
_ACT_REG = 2
_OUT_REG = 3


@dataclass(frozen=True)
class Instruction:
    """One instruction of a GeMM program."""

    op: str  # 'tilezero' | 'tload_act' | 'decomp_sw' | 'tepl' | 'tcomp' | 'store'
    dest: int = -1
    src: int = -1
    tile_index: int = -1
    m_block: int = -1
    k_block: int = -1


@dataclass
class GemmProgram:
    """An instruction stream plus the data it operates on."""

    activations: np.ndarray  # (N, K) float32
    matrix: CompressedMatrix
    instructions: List[Instruction] = field(default_factory=list)
    uses_tepl: bool = False

    @property
    def m_blocks(self) -> int:
        """Output blocks of 16 columns."""
        return self.matrix.shape[0] // TILE_ROWS

    @property
    def k_blocks(self) -> int:
        """Reduction blocks of 32 elements."""
        return self.matrix.shape[1] // TILE_COLS_BF16


@dataclass
class ProgramResult:
    """Output and execution statistics of a program run."""

    output: np.ndarray  # (N, M) float32
    instructions_executed: int
    tepl_issued: int
    tiles_decompressed: int


def _validate(activations: np.ndarray, matrix: CompressedMatrix) -> np.ndarray:
    activations = np.ascontiguousarray(activations, dtype=np.float32)
    if activations.ndim != 2 or activations.shape[1] != matrix.shape[1]:
        raise ProgramError(
            f"activations {activations.shape} do not match matrix "
            f"{matrix.shape}"
        )
    if activations.shape[0] > TILE_ROWS:
        raise ProgramError(
            f"at most {TILE_ROWS} activation rows fit a tile register"
        )
    return activations


def _emit_gemm(program: GemmProgram, decompress_op: str) -> None:
    k_blocks = program.k_blocks
    for m_block in range(program.m_blocks):
        program.instructions.append(
            Instruction(op="tilezero", dest=_OUT_REG, m_block=m_block)
        )
        for k_block in range(k_blocks):
            tile_index = m_block * k_blocks + k_block
            weight_reg = _WEIGHT_REGS[k_block % 2]
            program.instructions.append(
                Instruction(op="tload_act", dest=_ACT_REG, k_block=k_block)
            )
            program.instructions.append(
                Instruction(
                    op=decompress_op, dest=weight_reg, tile_index=tile_index
                )
            )
            program.instructions.append(
                Instruction(op="tcomp", dest=_OUT_REG, src=weight_reg)
            )
        program.instructions.append(
            Instruction(op="store", src=_OUT_REG, m_block=m_block)
        )


def build_software_gemm(
    activations: np.ndarray, matrix: CompressedMatrix
) -> GemmProgram:
    """The software-decompression instruction stream (Figure 2)."""
    program = GemmProgram(_validate(activations, matrix), matrix)
    _emit_gemm(program, decompress_op="decomp_sw")
    return program


def build_tepl_gemm(
    activations: np.ndarray, matrix: CompressedMatrix
) -> GemmProgram:
    """The TEPL instruction stream (Figure 10)."""
    program = GemmProgram(
        _validate(activations, matrix), matrix, uses_tepl=True
    )
    _emit_gemm(program, decompress_op="tepl")
    return program


def run_program(
    program: GemmProgram, pe: Optional[DecaPE] = None
) -> ProgramResult:
    """Interpret a GeMM program; returns the (N, M) output.

    TEPL programs require a :class:`DecaPE` configured for the matrix's
    format; software programs decompress through the reference path.
    """
    activations = bf16_round(program.activations)
    n_rows = activations.shape[0]
    m_total = program.matrix.shape[0]
    output = np.zeros((n_rows, m_total), dtype=np.float32)
    regs = TileRegisterFile()
    tepl_unit: Optional[TeplUnit] = None
    if program.uses_tepl:
        if pe is None:
            raise ProgramError("a TEPL program needs a DecaPE to run against")
        if pe.pipeline.format_name != program.matrix.format_name:
            raise ProgramError(
                f"PE configured for {pe.pipeline.format_name!r} but the "
                f"matrix is {program.matrix.format_name!r}"
            )
        tepl_unit = TeplUnit(pe=pe, regs=regs)
    executed = 0
    tiles_decompressed = 0
    current_m = -1
    for instr in program.instructions:
        executed += 1
        if instr.op == "tilezero":
            current_m = instr.m_block
            regs.zero(instr.dest, n_rows, TILE_ROWS)
        elif instr.op == "tload_act":
            k0 = instr.k_block * TILE_COLS_BF16
            regs.write(instr.dest, activations[:, k0:k0 + TILE_COLS_BF16])
        elif instr.op == "decomp_sw":
            tile = program.matrix.tiles[instr.tile_index]
            regs.write(instr.dest, tile.decompress_reference())
            tiles_decompressed += 1
        elif instr.op == "tepl":
            assert tepl_unit is not None
            tile = program.matrix.tiles[instr.tile_index]
            if not tepl_unit.can_issue():
                tepl_unit.complete_oldest()
            tepl_unit.issue(TeplInstruction(tile, instr.dest))
            tiles_decompressed += 1
        elif instr.op == "tcomp":
            if tepl_unit is not None:
                # The true register dependence: TComp needs its weight
                # register, so any TEPL targeting it must retire first.
                while any(
                    t.dest_register == instr.src for t in tepl_unit.in_flight
                ):
                    tepl_unit.complete_oldest()
            tile_compute(regs, instr.dest, _ACT_REG, instr.src)
        elif instr.op == "store":
            m0 = instr.m_block * TILE_ROWS
            output[:, m0:m0 + TILE_ROWS] = regs.read(instr.src)
        else:
            raise ProgramError(f"unknown instruction {instr.op!r}")
    if tepl_unit is not None:
        tepl_unit.drain()
    del current_m
    return ProgramResult(
        output=output,
        instructions_executed=executed,
        tepl_issued=tepl_unit.issued_total if tepl_unit else 0,
        tiles_decompressed=tiles_decompressed,
    )
