"""Functional AMX model: tile registers, TLoad, TStore, TComp.

AMX adds eight tile registers of up to 16 rows x 64 bytes (Section 2.3).
For BF16 GeMMs a weight tile holds 16x32 elements, an activation tile
N x 32, and TComp performs ``out += A @ W^T`` with BF16 inputs and
float32 accumulation — 512 x N FMAs per invocation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ProgramError
from repro.formats.bfloat import bf16_round
from repro.units import TILE_COLS_BF16, TILE_ROWS

N_TILE_REGISTERS = 8


class TileRegisterFile:
    """The eight architectural AMX tile registers."""

    def __init__(self) -> None:
        self._regs: List[Optional[np.ndarray]] = [None] * N_TILE_REGISTERS

    def _check_index(self, index: int) -> None:
        if not 0 <= index < N_TILE_REGISTERS:
            raise ProgramError(
                f"tile register index must be in [0, {N_TILE_REGISTERS}), "
                f"got {index}"
            )

    def write(self, index: int, data: np.ndarray) -> None:
        """Fill a tile register (at most 16 rows, rounded to BF16 values)."""
        self._check_index(index)
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] > TILE_ROWS:
            raise ProgramError(
                f"a tile holds at most {TILE_ROWS} rows, got shape {data.shape}"
            )
        self._regs[index] = bf16_round(data)

    def read(self, index: int) -> np.ndarray:
        """Read a tile register; raises if it was never written."""
        self._check_index(index)
        data = self._regs[index]
        if data is None:
            raise ProgramError(f"tile register {index} holds no data")
        return data

    def zero(self, index: int, rows: int, cols: int) -> None:
        """tilezero: clear a register to an all-zero tile."""
        self._check_index(index)
        self._regs[index] = np.zeros((rows, cols), dtype=np.float32)

    def clear(self) -> None:
        """Release all registers (tilerelease)."""
        self._regs = [None] * N_TILE_REGISTERS


def tile_load(
    regs: TileRegisterFile, index: int, source: np.ndarray
) -> None:
    """TLoad: move a dense BF16 tile from "memory" into a register."""
    regs.write(index, source)


def tile_store(regs: TileRegisterFile, index: int) -> np.ndarray:
    """TStore: copy a tile register out to "memory"."""
    return regs.read(index).copy()


def tile_compute(
    regs: TileRegisterFile, out_index: int, act_index: int, weight_index: int
) -> None:
    """TComp (TDPBF16PS): out += A @ W^T with float32 accumulation.

    ``A`` is (N, 32) activations, ``W`` is (16, 32) weights, the output
    register accumulates (N, 16) partial sums.
    """
    activations = regs.read(act_index)
    weights = regs.read(weight_index)
    if activations.shape[1] != TILE_COLS_BF16:
        raise ProgramError(
            f"activation tile must have {TILE_COLS_BF16} columns, got "
            f"{activations.shape}"
        )
    if weights.shape != (TILE_ROWS, TILE_COLS_BF16):
        raise ProgramError(
            f"weight tile must be ({TILE_ROWS}, {TILE_COLS_BF16}), got "
            f"{weights.shape}"
        )
    partial = activations @ weights.T
    accumulator = regs.read(out_index)
    if accumulator.shape != partial.shape:
        raise ProgramError(
            f"output tile is {accumulator.shape} but the product is "
            f"{partial.shape}"
        )
    # Accumulation stays in float32 (the TMUL's accumulators are FP32);
    # only the A/W inputs are BF16-rounded, which `write` already did.
    regs._regs[out_index] = accumulator + partial
