"""Unit helpers and constants shared across the library.

The simulator works internally in *cycles* at the core frequency; analytical
models work in SI units (bytes/second, operations/second). These helpers
keep the conversions explicit and in one place.
"""

from __future__ import annotations

# Multipliers (decimal, matching how the paper quotes bandwidths).
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# AMX tile geometry (Section 2.3 of the paper).
TILE_ROWS = 16
TILE_COLS_BF16 = 32
TILE_ELEMS = TILE_ROWS * TILE_COLS_BF16  # 512 weights per tile
TILE_BYTES_BF16 = TILE_ELEMS * 2  # 1 KB decompressed BF16 tile
TMUL_CYCLES = 16  # one TMUL tile multiplication takes 16 cycles
FMAS_PER_TILE_PER_ROW = 512  # N*K*M = N*32*16 => 512 FMAs per activation row


def gb_per_s(value: float) -> float:
    """Convert a bandwidth expressed in GB/s into bytes/second."""
    return value * GIGA


def ghz(value: float) -> float:
    """Convert a frequency expressed in GHz into Hz."""
    return value * GIGA


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert wall-clock seconds into (fractional) core cycles."""
    return seconds * frequency_hz


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert core cycles into wall-clock seconds."""
    return cycles / frequency_hz


def ns_to_cycles(nanoseconds: float, frequency_hz: float) -> float:
    """Convert a latency in nanoseconds into (fractional) core cycles."""
    return nanoseconds * 1e-9 * frequency_hz


def flops_per_tile(batch_rows: int) -> int:
    """FMAs performed by one TMUL tile operation for ``batch_rows`` rows.

    The paper counts FLOPs as FMAs: a tile op performs N x K x M =
    N x 32 x 16 = 512 * N FMAs (Section 2.3).
    """
    if batch_rows < 1:
        raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
    effective = min(batch_rows, TILE_ROWS)
    return FMAS_PER_TILE_PER_ROW * effective
