"""Packed-bitmask helpers for the unstructured sparse format.

Bits are packed LSB-first within each byte (bit ``i`` of byte ``j`` covers
element ``8*j + i``), matching how a hardware POPCNT/prefix-sum unit would
scan the mask from low addresses upward.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError


def pack_bitmask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean array into bytes, LSB-first, zero-padded at the end."""
    mask = np.ascontiguousarray(mask, dtype=bool).ravel()
    return np.packbits(mask, bitorder="little")


def unpack_bitmask(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` bits from an LSB-first packed byte array."""
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if count < 0:
        raise CompressionError(f"bit count must be non-negative, got {count}")
    if count > packed.size * 8:
        raise CompressionError(
            f"asked for {count} bits but the mask holds only {packed.size * 8}"
        )
    bits = np.unpackbits(packed, bitorder="little")
    return bits[:count].astype(bool)


def popcount(packed: np.ndarray) -> int:
    """Number of set bits in a packed bitmask (the hardware POPCNT result)."""
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    return int(np.unpackbits(packed).sum())


def expansion_indices(mask: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of the mask — DECA's crossbar control indices.

    For each dense output position ``p`` with ``mask[p]`` set, the returned
    value is the index into the packed nonzero array that must be routed to
    ``p``. This mirrors the Parallel Prefix Sum circuitry of Figure 11.
    """
    mask = np.ascontiguousarray(mask, dtype=bool).ravel()
    inclusive = np.cumsum(mask.astype(np.int64))
    return inclusive - mask.astype(np.int64)
