"""Unstructured-sparsity substrate: bitmask format, pruning, tiling.

The paper assumes a bitmask-based sparse format (Section 2.2): nonzero
weights are stored consecutively, and a bitmask with one bit per original
element records their positions. This package implements that format at the
granularity the TMUL consumes — 16x32 AMX weight tiles — plus the offline
compression pipeline of Figure 1.
"""

from repro.sparse.bitmask import (
    expansion_indices,
    pack_bitmask,
    popcount,
    unpack_bitmask,
)
from repro.sparse.prune import (
    kept_energy_fraction,
    magnitude_mask,
    random_mask,
    structured_24_mask,
)
from repro.sparse.tile import CompressedTile, TILE_SHAPE, tile_grid
from repro.sparse.compress import (
    CompressedMatrix,
    compress_matrix,
    decompress_matrix,
)
from repro.sparse.serialize import load_matrix, save_matrix

__all__ = [
    "expansion_indices",
    "pack_bitmask",
    "popcount",
    "unpack_bitmask",
    "kept_energy_fraction",
    "magnitude_mask",
    "random_mask",
    "structured_24_mask",
    "CompressedTile",
    "TILE_SHAPE",
    "tile_grid",
    "CompressedMatrix",
    "compress_matrix",
    "decompress_matrix",
    "load_matrix",
    "save_matrix",
]
