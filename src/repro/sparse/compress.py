"""Offline matrix compression: the left half of the paper's Figure 1.

A weight matrix is pruned to a target density, quantized, and split into
compressed 16x32 tiles. :class:`CompressedMatrix` is what the online side
(software kernels or DECA) consumes tile by tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.sparse.prune import magnitude_mask, random_mask
from repro.sparse.tile import CompressedTile, TILE_SHAPE, tile_grid
from repro.units import TILE_ELEMS


@dataclass(frozen=True)
class CompressedMatrix:
    """A weight matrix stored as compressed tiles (row-major tile order)."""

    shape: Tuple[int, int]
    format_name: str
    tiles: Tuple[CompressedTile, ...]

    @property
    def tile_count(self) -> int:
        """Number of 16x32 tiles in the matrix."""
        return len(self.tiles)

    @property
    def nnz(self) -> int:
        """Total stored nonzero weights."""
        return sum(tile.nnz for tile in self.tiles)

    @property
    def density(self) -> float:
        """Overall fraction of nonzero weights."""
        return self.nnz / (self.shape[0] * self.shape[1])

    def nbytes(self) -> int:
        """Total compressed footprint in bytes."""
        return sum(tile.nbytes() for tile in self.tiles)

    def compression_factor(self) -> float:
        """Size reduction versus the dense BF16 baseline (2 bytes/weight)."""
        dense_bytes = self.shape[0] * self.shape[1] * 2
        return dense_bytes / self.nbytes()


def compress_matrix(
    weights: np.ndarray,
    format_name: str,
    density: float = 1.0,
    pruning: str = "magnitude",
    rng: Optional[np.random.Generator] = None,
) -> CompressedMatrix:
    """Prune, quantize, and tile a dense float32 weight matrix.

    Args:
        weights: Dense matrix whose dimensions are multiples of (16, 32).
        format_name: Storage format from the registry (e.g. ``"bf8"``).
        density: Target fraction of nonzeros; 1.0 stores the matrix dense
            (no bitmask), anything lower uses the sparse bitmask format.
        pruning: ``"magnitude"`` (keep largest |w|) or ``"random"``.
        rng: Random generator for ``"random"`` pruning.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise CompressionError(f"expected a 2-D matrix, got shape {weights.shape}")
    mask: Optional[np.ndarray] = None
    if density < 1.0:
        if pruning == "magnitude":
            mask = magnitude_mask(weights, density)
        elif pruning == "random":
            mask = random_mask(weights.shape, density, rng=rng)
        else:
            raise CompressionError(
                f"unknown pruning method {pruning!r}; use 'magnitude' or 'random'"
            )
    tiles: List[CompressedTile] = []
    for row_slice, col_slice in tile_grid(weights.shape):
        tile_mask = None if mask is None else mask[row_slice, col_slice]
        tiles.append(
            CompressedTile.from_dense(
                weights[row_slice, col_slice], format_name, tile_mask
            )
        )
    return CompressedMatrix(weights.shape, format_name, tuple(tiles))


def decompress_matrix(matrix: CompressedMatrix) -> np.ndarray:
    """Reconstruct the dense BF16-valued float32 matrix from its tiles."""
    out = np.zeros(matrix.shape, dtype=np.float32)
    for (row_slice, col_slice), tile in zip(tile_grid(matrix.shape), matrix.tiles):
        out[row_slice, col_slice] = tile.decompress_reference()
    return out


def expected_tile_bytes(
    bits: int,
    density: float,
    sparse: bool,
    scale_bits_per_group: int = 0,
    group_size: int = 0,
) -> float:
    """Analytical expected bytes per compressed tile (used by the models).

    ``512 * density * bits / 8`` code bytes, plus the 64-byte bitmask when
    sparse, plus amortised scale bytes for grouped formats.
    """
    if not 0.0 < density <= 1.0:
        raise CompressionError(f"density must be in (0, 1], got {density}")
    total = TILE_ELEMS * density * bits / 8.0
    if sparse:
        total += TILE_ELEMS / 8.0
    if group_size > 0:
        total += (TILE_ELEMS / group_size) * scale_bits_per_group / 8.0
    return total
