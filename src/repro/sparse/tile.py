"""Compressed AMX weight tiles: the unit DECA and the TMUL operate on.

A weight tile holds 16 rows x 32 BF16 columns = 512 weights (Section 2.3).
Its compressed form (Figure 1) carries up to three data structures:

* ``codes`` — the nonzero weights' storage codes, packed consecutively,
* ``bitmask`` — 512 bits marking nonzero positions (absent when dense),
* ``scale_bits`` — one shared scale byte per quantization group (grouped
  formats only; for MXFP4 a group is one 32-element row).

``decompress_reference`` is the golden dequantize -> expand -> scale path
that DECA's pipeline output must match bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import CompressionError
from repro.formats import bfloat
from repro.formats.registry import QuantFormat, get_format
from repro.formats.mxfp import decode_shared_scale, encode_shared_scale
from repro.sparse import bitmask as bm
from repro.units import TILE_COLS_BF16, TILE_ELEMS, TILE_ROWS

TILE_SHAPE = (TILE_ROWS, TILE_COLS_BF16)
BITMASK_BYTES = TILE_ELEMS // 8  # 64 bytes for the 512-bit mask


@dataclass(frozen=True)
class CompressedTile:
    """One compressed 16x32 weight tile.

    Attributes:
        format_name: Storage format of the nonzero codes.
        codes: 1-D array of nonzero codes in row-major dense order.
        bitmask: Packed 512-bit mask (64 bytes), or ``None`` when dense.
        scale_bits: Per-group scale bytes (grouped formats), else ``None``.
    """

    format_name: str
    codes: np.ndarray
    bitmask: Optional[np.ndarray]
    scale_bits: Optional[np.ndarray]

    def __post_init__(self) -> None:
        if self.bitmask is not None and self.bitmask.size != BITMASK_BYTES:
            raise CompressionError(
                f"tile bitmask must be {BITMASK_BYTES} bytes, "
                f"got {self.bitmask.size}"
            )
        nnz = self.nnz
        if self.bitmask is None and nnz != TILE_ELEMS:
            raise CompressionError(
                f"dense tile must carry {TILE_ELEMS} codes, got {nnz}"
            )
        if self.bitmask is not None and bm.popcount(self.bitmask) != nnz:
            raise CompressionError(
                "bitmask popcount does not match the number of stored codes"
            )

    @property
    def fmt(self) -> QuantFormat:
        """The storage format descriptor."""
        return get_format(self.format_name)

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) weights."""
        return int(self.codes.size)

    @property
    def density(self) -> float:
        """Fraction of nonzero weights in the tile."""
        return self.nnz / TILE_ELEMS

    @property
    def is_sparse(self) -> bool:
        """Whether the tile carries a bitmask (sparse storage)."""
        return self.bitmask is not None

    def dense_mask(self) -> np.ndarray:
        """Boolean (16, 32) mask of nonzero positions."""
        if self.bitmask is None:
            return np.ones(TILE_SHAPE, dtype=bool)
        return bm.unpack_bitmask(self.bitmask, TILE_ELEMS).reshape(TILE_SHAPE)

    def nbytes(self) -> int:
        """Bytes occupied in memory: codes + bitmask + scale factors.

        Codes are bit-packed, so e.g. MXFP4 stores two weights per byte.
        """
        total = math.ceil(self.nnz * self.fmt.bits / 8)
        if self.bitmask is not None:
            total += BITMASK_BYTES
        if self.scale_bits is not None:
            total += math.ceil(self.scale_bits.size * self.fmt.scale_bits / 8)
        return total

    def row_nnz(self) -> np.ndarray:
        """Nonzero count of each of the 16 rows."""
        return self.dense_mask().sum(axis=1).astype(np.int64)

    def decompress_reference(self) -> np.ndarray:
        """Golden decompression to a dense (16, 32) BF16-valued float32 tile.

        Dequantize the codes, expand them into their dense positions, and
        apply group scales — the reference DECA's pipeline must reproduce.
        """
        fmt = self.fmt
        values = fmt.decode(self.codes).astype(np.float32)
        dense = np.zeros(TILE_ELEMS, dtype=np.float32)
        mask = self.dense_mask().ravel()
        dense[mask] = values
        if self.scale_bits is not None:
            scales = decode_shared_scale(self.scale_bits)
            assert fmt.group_size is not None
            per_elem = np.repeat(scales, fmt.group_size)
            dense = dense * per_elem
        return bfloat.bf16_round(dense).reshape(TILE_SHAPE)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        format_name: str,
        mask: Optional[np.ndarray] = None,
    ) -> "CompressedTile":
        """Compress a dense (16, 32) float tile, optionally with a keep-mask.

        When ``mask`` is given the tile is stored sparse (bitmask + packed
        nonzeros); grouped formats compute one scale per group from the
        *surviving* weights, so pruning never inflates the quantization
        range.
        """
        dense = np.ascontiguousarray(dense, dtype=np.float32)
        if dense.shape != TILE_SHAPE:
            raise CompressionError(
                f"a weight tile must be {TILE_SHAPE}, got {dense.shape}"
            )
        fmt = get_format(format_name)
        if mask is not None:
            mask = np.ascontiguousarray(mask, dtype=bool)
            if mask.shape != TILE_SHAPE:
                raise CompressionError(
                    f"tile mask must be {TILE_SHAPE}, got {mask.shape}"
                )
        kept = dense if mask is None else np.where(mask, dense, 0.0)
        scale_bits: Optional[np.ndarray] = None
        to_encode = kept
        if fmt.is_grouped:
            assert fmt.group_size is not None
            if TILE_ELEMS % fmt.group_size != 0:
                raise CompressionError(
                    f"group size {fmt.group_size} does not divide {TILE_ELEMS}"
                )
            groups = kept.reshape(-1, fmt.group_size)
            amax = np.max(np.abs(groups), axis=1)
            scale_bits = encode_shared_scale(amax)
            scales = decode_shared_scale(scale_bits)
            to_encode = (groups / scales[:, None]).reshape(TILE_SHAPE)
        codes_dense = fmt.encode(to_encode.astype(np.float32)).ravel()
        if mask is None:
            return cls(fmt.name, codes_dense, None, scale_bits)
        packed_mask = bm.pack_bitmask(mask)
        codes = codes_dense[mask.ravel()]
        return cls(fmt.name, codes, packed_mask, scale_bits)


def tile_grid(shape: Tuple[int, int]) -> Iterator[Tuple[slice, slice]]:
    """Iterate row-major over the 16x32 tile slices covering a matrix.

    The matrix dimensions must be multiples of the tile dimensions, as is
    the case for every FC layer in the evaluated models.
    """
    rows, cols = shape
    if rows % TILE_ROWS != 0 or cols % TILE_COLS_BF16 != 0:
        raise CompressionError(
            f"matrix shape {shape} is not a multiple of the tile "
            f"shape {TILE_SHAPE}"
        )
    for r in range(0, rows, TILE_ROWS):
        for c in range(0, cols, TILE_COLS_BF16):
            yield slice(r, r + TILE_ROWS), slice(c, c + TILE_COLS_BF16)
