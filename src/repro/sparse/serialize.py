"""Persist compressed matrices to disk (.npz) and load them back.

A practical library feature: offline compression (Figure 1, left) happens
once, so downstream users serialize the result. The format stores the
concatenated code/bitmask/scale streams plus per-tile offsets — the same
three data structures a DECA Loader fetches.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from repro.errors import CompressionError
from repro.formats.registry import get_format
from repro.sparse.compress import CompressedMatrix
from repro.sparse.tile import CompressedTile

_MAGIC = "repro-compressed-matrix-v1"

PathLike = Union[str, "os.PathLike[str]"]


def save_matrix(matrix: CompressedMatrix, path: PathLike) -> None:
    """Write a compressed matrix to an ``.npz`` file."""
    code_arrays = [tile.codes for tile in matrix.tiles]
    code_offsets = np.zeros(len(code_arrays) + 1, dtype=np.int64)
    np.cumsum([a.size for a in code_arrays], out=code_offsets[1:])
    codes = (
        np.concatenate(code_arrays)
        if code_arrays
        else np.zeros(0, dtype=np.uint8)
    )
    sparse = matrix.tiles[0].is_sparse if matrix.tiles else False
    bitmasks = (
        np.concatenate([tile.bitmask for tile in matrix.tiles])
        if sparse
        else np.zeros(0, dtype=np.uint8)
    )
    grouped = (
        matrix.tiles[0].scale_bits is not None if matrix.tiles else False
    )
    scales = (
        np.concatenate([tile.scale_bits for tile in matrix.tiles])
        if grouped
        else np.zeros(0, dtype=np.uint8)
    )
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        format_name=np.array(matrix.format_name),
        shape=np.array(matrix.shape, dtype=np.int64),
        sparse=np.array(sparse),
        grouped=np.array(grouped),
        codes=codes,
        code_offsets=code_offsets,
        bitmasks=bitmasks,
        scales=scales,
    )


def load_matrix(path: PathLike) -> CompressedMatrix:
    """Read a compressed matrix written by :func:`save_matrix`."""
    with np.load(path, allow_pickle=False) as data:
        if str(data["magic"]) != _MAGIC:
            raise CompressionError(
                f"{path!s} is not a repro compressed-matrix file"
            )
        format_name = str(data["format_name"])
        get_format(format_name)  # validate eagerly
        shape = tuple(int(v) for v in data["shape"])
        sparse = bool(data["sparse"])
        grouped = bool(data["grouped"])
        codes = data["codes"]
        offsets = data["code_offsets"]
        bitmasks = data["bitmasks"]
        scales = data["scales"]
    tile_count = len(offsets) - 1
    fmt = get_format(format_name)
    scale_entries = (
        (512 // fmt.group_size) if grouped and fmt.group_size else 0
    )
    tiles: List[CompressedTile] = []
    for i in range(tile_count):
        tile_codes = codes[offsets[i]:offsets[i + 1]]
        bitmask = bitmasks[i * 64:(i + 1) * 64] if sparse else None
        scale_bits = (
            scales[i * scale_entries:(i + 1) * scale_entries]
            if grouped
            else None
        )
        tiles.append(
            CompressedTile(
                format_name=format_name,
                codes=tile_codes,
                bitmask=bitmask,
                scale_bits=scale_bits,
            )
        )
    matrix = CompressedMatrix(shape, format_name, tuple(tiles))
    expected = (shape[0] // 16) * (shape[1] // 32)
    if matrix.tile_count != expected:
        raise CompressionError(
            f"file holds {matrix.tile_count} tiles but shape {shape} "
            f"needs {expected}"
        )
    return matrix
