"""Weight pruning: produce keep-masks at a target density.

The paper evaluates unstructured sparsity produced by methods such as
SparseGPT; for the reproduction the relevant property is only the *density*
(fraction of nonzeros) and its spatial distribution. ``magnitude_mask``
keeps the largest-magnitude weights (the classic pruning criterion) and
``random_mask`` draws a uniform unstructured pattern — the distribution the
paper's binomial bubble model assumes (Section 6.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import CompressionError


def _validate_density(density: float) -> None:
    if not 0.0 < density <= 1.0:
        raise CompressionError(f"density must be in (0, 1], got {density}")


def _target_nnz(size: int, density: float) -> int:
    """Number of weights kept: rounded, but at least one."""
    return max(1, int(round(size * density)))


def magnitude_mask(weights: np.ndarray, density: float) -> np.ndarray:
    """Keep-mask selecting the ``density`` fraction of largest |weights|.

    Ties at the threshold are broken by position (earlier elements kept), so
    the mask always has exactly ``round(size * density)`` ones (min 1).
    """
    _validate_density(density)
    weights = np.ascontiguousarray(weights, dtype=np.float32)
    keep = _target_nnz(weights.size, density)
    if keep >= weights.size:
        return np.ones(weights.shape, dtype=bool)
    flat = np.abs(weights.ravel())
    # argpartition gives the indices of the `keep` largest magnitudes.
    top = np.argpartition(flat, weights.size - keep)[weights.size - keep:]
    mask = np.zeros(weights.size, dtype=bool)
    mask[top] = True
    return mask.reshape(weights.shape)


def random_mask(
    shape: Tuple[int, ...],
    density: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniform unstructured keep-mask with an exact nonzero count.

    Exactly ``round(size * density)`` positions (min 1) are kept, drawn
    uniformly at random without replacement.
    """
    _validate_density(density)
    rng = rng if rng is not None else np.random.default_rng()
    size = int(np.prod(shape))
    keep = _target_nnz(size, density)
    mask = np.zeros(size, dtype=bool)
    mask[rng.choice(size, size=min(keep, size), replace=False)] = True
    return mask.reshape(shape)


def achieved_density(mask: np.ndarray) -> float:
    """Fraction of kept weights in a mask."""
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.size == 0:
        raise CompressionError("cannot compute the density of an empty mask")
    return float(mask.sum()) / mask.size


def structured_24_mask(weights: np.ndarray) -> np.ndarray:
    """2:4 structured keep-mask: the two largest |weights| of every four.

    This is the pattern NVIDIA sparse Tensor Cores and VEGETA-style
    in-core units support (paper Table 2). The last axis must be a
    multiple of four. Density is exactly 50%, but unlike unstructured
    pruning the choice is constrained within each group of four — which
    is why unstructured sparsity reaches higher accuracy at equal density
    (Section 2.2).
    """
    weights = np.ascontiguousarray(weights, dtype=np.float32)
    if weights.shape[-1] % 4 != 0:
        raise CompressionError(
            f"2:4 sparsity needs the last axis to be a multiple of 4, "
            f"got {weights.shape[-1]}"
        )
    groups = np.abs(weights).reshape(-1, 4)
    order = np.argsort(groups, axis=1)
    mask = np.ones_like(groups, dtype=bool)
    rows = np.arange(groups.shape[0])
    # Drop the two smallest magnitudes of each group.
    mask[rows, order[:, 0]] = False
    mask[rows, order[:, 1]] = False
    return mask.reshape(weights.shape)


def kept_energy_fraction(weights: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of the squared weight norm a keep-mask preserves.

    A proxy for pruning quality: magnitude-unstructured pruning keeps
    strictly more energy than 2:4 at the same 50% density.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    total = float(np.sum(weights**2))
    if total == 0.0:
        raise CompressionError("cannot measure energy of an all-zero matrix")
    return float(np.sum((weights * mask) ** 2)) / total
