"""DECA reproduction: a near-core LLM decompression accelerator library.

A from-scratch Python implementation of *DECA: A Near-Core LLM
Decompression Accelerator Grounded on a 3D Roofline Model* (MICRO 2025):

* :mod:`repro.formats` / :mod:`repro.sparse` — bit-exact compression
  substrate (BF16/BF8/E4M3/MXFP4/INT4, bitmask unstructured sparsity,
  16x32 AMX tiles);
* :mod:`repro.core` — the Roof-Surface analytical model, BORD diagrams,
  bubble analytics and the (W, L) design-space exploration;
* :mod:`repro.sim` — the tile-granularity SPR-like simulator;
* :mod:`repro.kernels` — the libxsmm-style software baseline and
  functional compressed GeMMs;
* :mod:`repro.deca` — the DECA PE (functional + cycle-exact) and its
  system integration;
* :mod:`repro.isa` — AMX semantics and the TEPL ISA extension;
* :mod:`repro.llm` — Llama2-70B / OPT-66B next-token latency;
* :mod:`repro.experiments` — one harness per paper table/figure.

Quick start::

    import numpy as np
    from repro import compress_matrix, DecaPE, CompressionScheme
    from repro.sim import hbm_system, simulate_tile_stream
    from repro.deca.integration import deca_kernel_timing

    weights = np.random.randn(1024, 1024).astype(np.float32)
    matrix = compress_matrix(weights, "bf8", density=0.2)
    pe = DecaPE()
    pe.configure("bf8")
    out, stats = pe.pipeline.decompress_tile(matrix.tiles[0])

    scheme = CompressionScheme("bf8", 0.2)
    system = hbm_system()
    result = simulate_tile_stream(system, deca_kernel_timing(system, scheme))
    print(result.flops(batch_rows=1) / 1e12, "TFLOPS")
"""

from repro.core.machine import MachineSpec, SPR_DDR, SPR_HBM
from repro.core.schemes import (
    CompressionScheme,
    PAPER_SCHEMES,
    UNCOMPRESSED,
    parse_scheme,
)
from repro.core.roofline import Roofline
from repro.core.roofsurface import BoundingFactor, RoofSurface
from repro.core.bord import Bord
from repro.core.dse import explore_deca_designs
from repro.deca.config import DecaConfig
from repro.deca.pe import DecaPE
from repro.deca.pipeline import DecaPipeline
from repro.errors import (
    CompressionError,
    ConfigurationError,
    FormatError,
    ProgramError,
    ReproError,
    SimulationError,
)
from repro.sparse.compress import (
    CompressedMatrix,
    compress_matrix,
    decompress_matrix,
)
from repro.sparse.tile import CompressedTile

__version__ = "1.0.0"

__all__ = [
    "MachineSpec",
    "SPR_DDR",
    "SPR_HBM",
    "CompressionScheme",
    "PAPER_SCHEMES",
    "UNCOMPRESSED",
    "parse_scheme",
    "Roofline",
    "RoofSurface",
    "BoundingFactor",
    "Bord",
    "explore_deca_designs",
    "DecaConfig",
    "DecaPE",
    "DecaPipeline",
    "CompressionError",
    "ConfigurationError",
    "FormatError",
    "ProgramError",
    "ReproError",
    "SimulationError",
    "CompressedMatrix",
    "compress_matrix",
    "decompress_matrix",
    "CompressedTile",
    "__version__",
]
