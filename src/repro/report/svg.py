"""A minimal SVG canvas: primitives the figure builders compose.

Deliberately tiny — shapes, text, polylines, and axis helpers with linear
or log10 coordinate mapping. Output is plain SVG 1.1 that any browser or
paper pipeline renders.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


class AxisScale:
    """Maps data coordinates onto pixel coordinates (linear or log10)."""

    def __init__(
        self,
        data_min: float,
        data_max: float,
        pixel_min: float,
        pixel_max: float,
        log: bool = False,
    ) -> None:
        if data_max <= data_min:
            raise ConfigurationError("axis range must be increasing")
        if log and data_min <= 0:
            raise ConfigurationError("log axes need positive data")
        self.data_min = data_min
        self.data_max = data_max
        self.pixel_min = pixel_min
        self.pixel_max = pixel_max
        self.log = log

    def __call__(self, value: float) -> float:
        if self.log:
            lo, hi = math.log10(self.data_min), math.log10(self.data_max)
            fraction = (math.log10(max(value, 1e-300)) - lo) / (hi - lo)
        else:
            fraction = (value - self.data_min) / (self.data_max - self.data_min)
        return self.pixel_min + fraction * (self.pixel_max - self.pixel_min)

    def ticks(self, count: int = 5) -> List[float]:
        """Representative tick positions in data space."""
        if self.log:
            lo = math.ceil(math.log10(self.data_min))
            hi = math.floor(math.log10(self.data_max))
            return [10.0**e for e in range(lo, hi + 1)]
        step = (self.data_max - self.data_min) / (count - 1)
        return [self.data_min + i * step for i in range(count)]


class SvgCanvas:
    """Accumulates SVG elements and renders the final document."""

    def __init__(self, width: int = 640, height: int = 420) -> None:
        if width < 64 or height < 64:
            raise ConfigurationError("canvas too small to hold a figure")
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def rect(
        self, x: float, y: float, w: float, h: float,
        fill: str, opacity: float = 1.0,
    ) -> None:
        """Add a filled rectangle."""
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
            f'height="{_fmt(h)}" fill="{fill}" opacity="{opacity:g}"/>'
        )

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str = "#333", width: float = 1.0, dash: Optional[str] = None,
    ) -> None:
        """Add a line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{width:g}"{dash_attr}/>'
        )

    def polyline(
        self, points: Sequence[Tuple[float, float]],
        stroke: str = "#06c", width: float = 1.5,
    ) -> None:
        """Add a connected polyline."""
        if len(points) < 2:
            raise ConfigurationError("a polyline needs at least two points")
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:g}"/>'
        )

    def circle(
        self, x: float, y: float, r: float = 3.5, fill: str = "#c22"
    ) -> None:
        """Add a marker circle."""
        self._elements.append(
            f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="{r:g}" fill="{fill}"/>'
        )

    def text(
        self, x: float, y: float, content: str,
        size: int = 11, anchor: str = "start", fill: str = "#222",
    ) -> None:
        """Add a text label."""
        escaped = (
            content.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;")
        )
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}">{escaped}</text>'
        )

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n  {body}\n</svg>\n'
        )

    def save(self, path) -> None:
        """Write the document to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
