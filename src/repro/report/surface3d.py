"""Isometric SVG projection of the 3-D Roof-Surface (Figure 4a).

Without matplotlib, the 3-D surface is rendered as an isometric
projection: the (AI_XM, AI_XV) grid cells become shaded quadrilaterals
whose fill encodes the bounding region, painted back-to-front so nearer
cells occlude farther ones, with the observed kernel points dropped on
top as vertical stems.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.core.roofsurface import BoundingFactor, RoofSurface, RoofSurfacePoint
from repro.errors import ConfigurationError
from repro.report.svg import SvgCanvas

_REGION_FILLS = {
    BoundingFactor.MEMORY: "#8fbc8f",
    BoundingFactor.VECTOR: "#e8b86d",
    BoundingFactor.MATRIX: "#7f9fd4",
}
_ISO_ANGLE = math.radians(30)


def _project(
    u: float, v: float, w: float, canvas: SvgCanvas, z_px: float
) -> Tuple[float, float]:
    """Isometric projection of normalised (u, v, w) in [0, 1]^3."""
    cos_a, sin_a = math.cos(_ISO_ANGLE), math.sin(_ISO_ANGLE)
    span_x = canvas.width * 0.42
    x = canvas.width / 2 + (u - v) * cos_a * span_x
    y = (
        canvas.height * 0.82
        - (u + v) * sin_a * span_x
        - w * z_px
    )
    return x, y


def roofsurface_svg(
    model: RoofSurface,
    points: Sequence[RoofSurfacePoint],
    aixm_max: float,
    aixv_max: float,
    title: str = "Figure 4a: the Roof-Surface",
    grid: int = 24,
) -> str:
    """Render the bounding surface plus kernel points isometrically."""
    if grid < 4:
        raise ConfigurationError("grid must be at least 4 cells per axis")
    canvas = SvgCanvas(720, 520)
    x, y, z = model.surface_grid(aixm_max, aixv_max, points=grid + 1)
    z_peak = float(z.max())
    z_px = canvas.height * 0.45

    def corner(i: int, j: int) -> Tuple[float, float]:
        return _project(
            x[i, j] / aixm_max, y[i, j] / aixv_max,
            z[i, j] / z_peak, canvas, z_px,
        )

    canvas.text(canvas.width / 2, 22, title, size=14, anchor="middle")
    # Paint back-to-front: cells with the largest (u + v) first project
    # highest on screen and must be drawn before nearer cells.
    order = sorted(
        ((i, j) for i in range(grid) for j in range(grid)),
        key=lambda ij: -(ij[0] + ij[1]),
    )
    for i, j in order:
        center_m = (x[i, j] + x[i + 1, j + 1]) / 2
        center_v = (y[i, j] + y[i + 1, j + 1]) / 2
        fill = _REGION_FILLS[model.bounding_factor(center_m, center_v)]
        corners = [
            corner(i, j), corner(i, j + 1),
            corner(i + 1, j + 1), corner(i + 1, j),
        ]
        path = " ".join(f"{px:.1f},{py:.1f}" for px, py in corners)
        canvas._elements.append(
            f'<polygon points="{path}" fill="{fill}" stroke="#ffffff" '
            f'stroke-width="0.4" opacity="0.95"/>'
        )
    # Kernel points as stems from the floor to their FLOPS height.
    for point in points:
        u = min(point.aixm / aixm_max, 1.0)
        v = min(point.aixv / aixv_max, 1.0)
        base = _project(u, v, 0.0, canvas, z_px)
        tip = _project(u, v, point.flops / z_peak, canvas, z_px)
        canvas.line(*base, *tip, stroke="#a00", width=1.2)
        canvas.circle(tip[0], tip[1], r=3.0, fill="#a00")
        canvas.text(tip[0] + 5, tip[1] - 4, point.label, size=8)
    # Legend and axis hints.
    legend_x = 18.0
    for offset, (factor, fill) in enumerate(_REGION_FILLS.items()):
        y_pos = 46 + offset * 16
        canvas.rect(legend_x, y_pos - 9, 11, 11, fill=fill)
        canvas.text(legend_x + 16, y_pos, f"{factor.value}-bound", size=10)
    canvas.text(canvas.width - 16, canvas.height - 30,
                "x: AI_XM, y: AI_XV, z: FLOPS", size=10, anchor="end")
    return canvas.render()
