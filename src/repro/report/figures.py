"""SVG builders for the paper's figure families.

Each builder consumes the corresponding experiment result and returns a
complete SVG document string (also saveable through
:meth:`repro.report.svg.SvgCanvas.save` semantics by writing the string).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bord import Bord, BordPoint
from repro.core.roofline import RooflinePoint
from repro.core.roofsurface import BoundingFactor
from repro.errors import ConfigurationError
from repro.report.svg import AxisScale, SvgCanvas

_MARGIN_LEFT = 64.0
_MARGIN_RIGHT = 20.0
_MARGIN_TOP = 36.0
_MARGIN_BOTTOM = 48.0

_REGION_COLORS = {
    BoundingFactor.MEMORY: "#bde0bd",
    BoundingFactor.VECTOR: "#f7d8a8",
    BoundingFactor.MATRIX: "#b8cdee",
}


def _plot_area(canvas: SvgCanvas) -> Tuple[float, float, float, float]:
    return (
        _MARGIN_LEFT,
        canvas.width - _MARGIN_RIGHT,
        canvas.height - _MARGIN_BOTTOM,
        _MARGIN_TOP,
    )


def roofline_svg(
    curve: Sequence[Tuple[float, float]],
    points: Sequence[RooflinePoint],
    title: str,
) -> str:
    """Figure 3-style roofline: log-log curve plus observed/optimal dots."""
    if not curve or not points:
        raise ConfigurationError("a roofline figure needs a curve and points")
    canvas = SvgCanvas(640, 420)
    x_lo, x_hi, y_lo, y_hi = _plot_area(canvas)
    ais = [ai for ai, _ in curve] + [p.arithmetic_intensity for p in points]
    flops = (
        [f for _, f in curve]
        + [p.observed_flops for p in points]
        + [p.optimal_flops for p in points]
    )
    x_scale = AxisScale(min(ais) * 0.9, max(ais) * 1.1, x_lo, x_hi, log=True)
    y_scale = AxisScale(
        min(flops) * 0.8, max(flops) * 1.3, y_lo, y_hi, log=True
    )
    canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")
    # Axes.
    canvas.line(x_lo, y_lo, x_hi, y_lo)
    canvas.line(x_lo, y_lo, x_lo, y_hi)
    for tick in x_scale.ticks():
        canvas.text(
            x_scale(tick), y_lo + 16, f"{tick:g}", size=9, anchor="middle"
        )
    for tick in y_scale.ticks():
        canvas.text(
            x_lo - 6, y_scale(tick) + 3, f"{tick / 1e12:g}T", size=9,
            anchor="end",
        )
    canvas.text(
        (x_lo + x_hi) / 2, canvas.height - 12,
        "arithmetic intensity (FLOP/byte)", size=10, anchor="middle",
    )
    canvas.polyline(
        [(x_scale(ai), y_scale(f)) for ai, f in curve], stroke="#555",
        width=2.0,
    )
    for point in points:
        x = x_scale(point.arithmetic_intensity)
        canvas.circle(x, y_scale(point.optimal_flops), fill="#888")
        canvas.circle(x, y_scale(point.observed_flops), fill="#c22")
        canvas.text(
            x + 4, y_scale(point.observed_flops) - 5, point.label, size=8
        )
    canvas.text(x_hi - 4, y_hi + 12, "grey: optimal, red: observed",
                size=9, anchor="end")
    return canvas.render()


def bord_svg(
    bord: Bord,
    points: Sequence[BordPoint],
    aixm_max: float,
    aixv_max: float,
    title: str,
    samples: int = 64,
) -> str:
    """Figure 5/6/16-style BORD: shaded regions plus kernel markers."""
    if aixm_max <= 0 or aixv_max <= 0:
        raise ConfigurationError("BORD extents must be positive")
    canvas = SvgCanvas(640, 440)
    x_lo, x_hi, y_lo, y_hi = _plot_area(canvas)
    x_scale = AxisScale(0.0, aixm_max, x_lo, x_hi)
    y_scale = AxisScale(0.0, aixv_max, y_lo, y_hi)
    cell_w = (x_hi - x_lo) / samples
    cell_h = (y_lo - y_hi) / samples
    for i in range(samples):
        x = (i + 0.5) / samples * aixm_max
        for j in range(samples):
            y = (j + 0.5) / samples * aixv_max
            color = _REGION_COLORS[bord.classify(x, y)]
            canvas.rect(
                x_scale(x) - cell_w / 2,
                y_scale(y) - cell_h / 2,
                cell_w + 0.5,
                cell_h + 0.5,
                fill=color,
            )
    canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")
    canvas.line(x_lo, y_lo, x_hi, y_lo)
    canvas.line(x_lo, y_lo, x_lo, y_hi)
    canvas.text((x_lo + x_hi) / 2, canvas.height - 12,
                "AI_XM (matrix ops / byte)", size=10, anchor="middle")
    canvas.text(14, (y_lo + y_hi) / 2, "AI_XV", size=10, anchor="middle")
    for point in points:
        if point.aixm > aixm_max or point.aixv > aixv_max:
            continue
        px, py = x_scale(point.aixm), y_scale(point.aixv)
        canvas.circle(px, py, r=3.0, fill="#222")
        canvas.text(px + 4, py - 4, point.label, size=8)
    legend_y = y_hi + 10
    for offset, (factor, color) in enumerate(_REGION_COLORS.items()):
        x = x_lo + 8 + offset * 90
        canvas.rect(x, legend_y - 9, 10, 10, fill=color)
        canvas.text(x + 14, legend_y, f"{factor.value}-bound", size=9)
    return canvas.render()


def speedup_bars_svg(
    labels: Sequence[str],
    series: Dict[str, List[float]],
    title: str,
    colors: Optional[Dict[str, str]] = None,
) -> str:
    """Figure 12/13/15/17-style grouped bars: one group per scheme."""
    if not labels or not series:
        raise ConfigurationError("bar figures need labels and series")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    default_palette = ["#7c9ed9", "#d98a7c", "#8cc08c", "#c7a8e0", "#999"]
    names = list(series)
    palette = colors or {
        name: default_palette[i % len(default_palette)]
        for i, name in enumerate(names)
    }
    canvas = SvgCanvas(720, 400)
    x_lo, x_hi, y_lo, y_hi = _plot_area(canvas)
    peak = max(max(values) for values in series.values())
    y_scale = AxisScale(0.0, peak * 1.15, y_lo, y_hi)
    canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")
    canvas.line(x_lo, y_lo, x_hi, y_lo)
    canvas.line(x_lo, y_lo, x_lo, y_hi)
    for tick in y_scale.ticks():
        canvas.text(x_lo - 6, y_scale(tick) + 3, f"{tick:.1f}",
                    size=9, anchor="end")
        canvas.line(x_lo, y_scale(tick), x_hi, y_scale(tick),
                    stroke="#eee")
    group_width = (x_hi - x_lo) / len(labels)
    bar_width = group_width * 0.8 / len(names)
    for g, label in enumerate(labels):
        group_x = x_lo + g * group_width + group_width * 0.1
        for s, name in enumerate(names):
            value = series[name][g]
            top = y_scale(value)
            canvas.rect(
                group_x + s * bar_width, top, bar_width * 0.92,
                y_lo - top, fill=palette[name],
            )
        canvas.text(
            group_x + group_width * 0.4, y_lo + 14, label, size=8,
            anchor="middle",
        )
    for s, name in enumerate(names):
        x = x_lo + 8 + s * 130
        canvas.rect(x, y_hi - 2, 10, 10, fill=palette[name])
        canvas.text(x + 14, y_hi + 7, name, size=9)
    return canvas.render()
