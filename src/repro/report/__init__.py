"""Figure export without plotting dependencies.

The evaluation environment has no matplotlib, so this package writes the
paper's figures as hand-built SVG: rooflines (Figure 3), BORDs (Figures
5/6/16), and grouped speedup bars (Figures 12/13/15/17).
"""

from repro.report.svg import SvgCanvas
from repro.report.figures import (
    bord_svg,
    roofline_svg,
    speedup_bars_svg,
)
from repro.report.surface3d import roofsurface_svg

__all__ = [
    "SvgCanvas",
    "bord_svg",
    "roofline_svg",
    "speedup_bars_svg",
    "roofsurface_svg",
]
