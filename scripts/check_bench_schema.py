#!/usr/bin/env python
"""Validate ``BENCH_perf.json`` against the harness's schema.

The perf report is hand-merged by ``--only`` refreshes and read by the
regression gate, so a malformed entry (a NaN from a degenerate timing
loop, a negative wall time from a clock bug, a stale anchor name after a
rename) could sit in the file unnoticed until the gate mis-fires. This
check pins the contract:

* the document carries ``schema_version``, ``generated_unix``, ``host``,
  ``protocol``, and a non-empty ``benchmarks`` mapping;
* every benchmark name is one the harness can produce
  (``run_bench.KNOWN_BENCHMARKS``) and every known anchor is recorded;
* every entry has a finite, positive ``after_s``;
* anchors whose regression gate reads more fields than ``after_s``
  (``ANCHOR_REQUIRED_FIELDS``) carry all of them;
* every numeric field in every entry is finite and non-negative, and
  coalescing rates stay within [0, 1].

It is wired into tier-1 through ``tests/test_bench_schema.py`` and can
run standalone::

    PYTHONPATH=src python scripts/check_bench_schema.py [REPORT]

Exit status: 0 when the report is valid, 1 when problems are found,
2 when the report is missing or unreadable.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
from typing import Any, Dict, List

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_REPORT = REPO_ROOT / "BENCH_perf.json"

#: Top-level keys every report document must carry.
REQUIRED_DOCUMENT_KEYS = (
    "schema_version", "generated_unix", "host", "protocol", "benchmarks",
)

#: Per-anchor fields every benchmark entry must carry.
REQUIRED_ENTRY_KEYS = ("after_s",)

#: Extra required fields for anchors whose gate reads more than
#: ``after_s`` — a partial ``--only`` refresh that drops one of these
#: would quietly disarm the corresponding regression gate.
ANCHOR_REQUIRED_FIELDS: Dict[str, "tuple[str, ...]"] = {
    "serve_coalesced_8x": (
        "serial_s", "coalesced_speedup", "coalesced_hit_rate", "requests",
    ),
    "serve_cancel_reclaim": (
        "full_s", "reclaimed_fraction", "cells",
    ),
    "disk_delta_commit": (
        "per_entry_s", "delta_commit_speedup", "entries",
    ),
    "disk_index_attach": (
        "stat_walk_s", "index_attach_speedup", "entries",
    ),
    "prefetch_warm_sweep": (
        "cold_s", "warm_speedup", "prefetch_hit_rate", "cells",
    ),
    "remote_dispatch_overhead": (
        "fork_s", "dispatch_overhead_ratio", "cells",
    ),
    "remote_delta_dedup": (
        "cold_s", "cold_delta_bytes", "warm_delta_bytes",
        "warm_shard_bytes_ratio",
    ),
}

#: Fields that are rates/fractions of a coalescing total and therefore
#: must not exceed 1.0 (the generic numeric check only pins >= 0).
UNIT_INTERVAL_FIELDS = (
    "coalesced_hit_rate", "reclaimed_fraction", "prefetch_hit_rate",
    "warm_shard_bytes_ratio",
)


def _known_benchmarks() -> "tuple[str, ...]":
    """The harness's anchor names (imported lazily for standalone runs)."""
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    from benchmarks.perf.run_bench import KNOWN_BENCHMARKS

    return KNOWN_BENCHMARKS


def validate_document(document: Any) -> List[str]:
    """Return every schema problem in a loaded report (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"report root must be an object, got {type(document).__name__}"]
    for key in REQUIRED_DOCUMENT_KEYS:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append("'benchmarks' must be a non-empty object")
        return problems
    known = _known_benchmarks()
    unknown = sorted(set(benchmarks) - set(known))
    for name in unknown:
        problems.append(
            f"{name}: not a benchmark the harness can produce "
            "(stale entry after a rename?)"
        )
    missing = sorted(set(known) - set(benchmarks))
    for name in missing:
        problems.append(
            f"{name}: known anchor missing from the report "
            "(re-record with run_bench.py)"
        )
    for name, entry in sorted(benchmarks.items()):
        problems.extend(_validate_entry(name, entry))
    return problems


def _validate_entry(name: str, entry: Any) -> List[str]:
    """Schema problems in one benchmark entry."""
    if not isinstance(entry, dict):
        return [f"{name}: entry must be an object, got {type(entry).__name__}"]
    problems: List[str] = []
    required = REQUIRED_ENTRY_KEYS + ANCHOR_REQUIRED_FIELDS.get(name, ())
    for key in required:
        if key not in entry:
            problems.append(f"{name}: missing required field {key!r}")
    for field, value in sorted(entry.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(
                f"{name}.{field}: must be a number, got "
                f"{type(value).__name__}"
            )
            continue
        if not math.isfinite(value):
            problems.append(f"{name}.{field}: non-finite value {value!r}")
        elif value < 0.0:
            problems.append(f"{name}.{field}: negative value {value!r}")
        elif field in UNIT_INTERVAL_FIELDS and value > 1.0:
            problems.append(
                f"{name}.{field}: rate above 1.0 ({value!r})"
            )
    after = entry.get("after_s")
    if isinstance(after, (int, float)) and math.isfinite(after) and after <= 0:
        problems.append(f"{name}.after_s: must be positive, got {after!r}")
    return problems


def validate_report(path: pathlib.Path) -> List[str]:
    """Load and validate a report file; unreadable files are a problem."""
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"no report at {path}; record one with run_bench.py"]
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path} is unreadable: {error}"]
    return validate_document(document)


def main(argv: "List[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    path = pathlib.Path(args[0]) if args else DEFAULT_REPORT
    problems = validate_report(path)
    if problems:
        missing = any("no report at" in p or "unreadable" in p for p in problems)
        print(f"{path}: {len(problems)} schema problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 2 if missing else 1
    benchmarks = json.loads(path.read_text())["benchmarks"]
    print(f"{path}: schema ok ({len(benchmarks)} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
