#!/usr/bin/env python
"""Fail if compiled Python artifacts are tracked in git.

PR 2 accidentally committed ``__pycache__/`` directories; this guard
keeps them out for good. It is wired into tier-1 through
``tests/test_repo_hygiene.py`` and can run standalone::

    python scripts/check_no_pyc.py

Exit status: 0 when the index is clean (or when there is no git
checkout to inspect — e.g. a source tarball — in which case the check
is vacuously satisfied and says so), 1 when compiled artifacts are
tracked.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: File suffixes that are always build products.
COMPILED_SUFFIXES = (".pyc", ".pyo", ".pyd")


def tracked_files(repo_root: pathlib.Path = REPO_ROOT) -> Optional[List[str]]:
    """Paths tracked by git, or ``None`` when git can't answer."""
    try:
        completed = subprocess.run(
            ["git", "ls-files"],
            cwd=repo_root, capture_output=True, text=True, timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.splitlines()


def compiled_artifacts(paths: List[str]) -> List[str]:
    """The subset of ``paths`` that are compiled-Python build products."""
    return sorted(
        path
        for path in paths
        if path.endswith(COMPILED_SUFFIXES)
        or "__pycache__" in path.split("/")
    )


def main() -> int:
    paths = tracked_files()
    if paths is None:
        print("check_no_pyc: not a git checkout (or git missing); skipping")
        return 0
    offenders = compiled_artifacts(paths)
    if offenders:
        print(
            f"check_no_pyc: {len(offenders)} compiled artifact(s) tracked "
            "in git — remove with `git rm -r --cached <path>`:"
        )
        for path in offenders:
            print(f"  {path}")
        return 1
    print(f"check_no_pyc: clean ({len(paths)} tracked files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
